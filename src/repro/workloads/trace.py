"""End-to-end usage simulation (ch. 8, experiment E10).

Drives a live cluster through a multi-day window: every host has an
owner following a diurnal activity trace; owners submit short
interactive jobs (Zhou lifetimes) while at the console and occasionally
long parallelizable batches that fan out through the load-sharing
facility.  The report mirrors the thesis's month-of-production table:
counts of remote execs and evictions, processor utilization (theirs:
2.3 %), and the idle-host fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

import numpy as np

from ..cluster import SpriteCluster
from ..kernel import Host, UserContext
from ..loadsharing import LoadSharingService
from ..migration import records_by_reason
from ..sim import Effect, Sleep, spawn
from .activity import ActivityDriver, ActivityModel
from .lifetimes import ZhouLifetimes

__all__ = ["UsageReport", "UsageSimulation"]


@dataclass
class UsageReport:
    duration: float
    hosts: int
    interactive_jobs: int = 0
    batches: int = 0
    batch_jobs: int = 0
    remote_execs: int = 0
    evictions: int = 0
    eviction_victims: int = 0
    migrations_total: int = 0
    cpu_seconds: float = 0.0
    idle_samples: List[float] = field(default_factory=list)

    @property
    def processor_utilization(self) -> float:
        """Cluster-wide CPU utilization over the window (percent)."""
        return 100.0 * self.cpu_seconds / (self.duration * self.hosts)

    @property
    def mean_idle_fraction(self) -> float:
        return float(np.mean(self.idle_samples)) if self.idle_samples else 0.0

    def rows(self) -> Dict[str, float]:
        return {
            "duration_days": self.duration / 86400.0,
            "hosts": self.hosts,
            "interactive_jobs": self.interactive_jobs,
            "batches": self.batches,
            "remote_execs": self.remote_execs,
            "evictions": self.evictions,
            "eviction_victims": self.eviction_victims,
            "migrations_total": self.migrations_total,
            "processor_utilization_pct": round(self.processor_utilization, 3),
            "mean_idle_fraction": round(self.mean_idle_fraction, 3),
        }


def _interactive_job(proc: UserContext, cpu: float) -> Generator[Effect, None, int]:
    yield from proc.compute(cpu)
    return 0


def _batch_unit(proc: UserContext, cpu: float) -> Generator[Effect, None, int]:
    yield from proc.use_memory(512 * 1024)
    yield from proc.compute(cpu, dirty_bytes_per_second=1024)
    return 0


class UsageSimulation:
    """Owner behaviour + load sharing on a live cluster."""

    def __init__(
        self,
        cluster: SpriteCluster,
        service: LoadSharingService,
        duration: float = 8 * 3600.0,
        activity: Optional[ActivityModel] = None,
        think_time: float = 90.0,
        batch_probability: float = 0.02,
        batch_width: int = 4,
        batch_unit_cpu: float = 60.0,
        sample_period: float = 600.0,
        seed: int = 0,
    ):
        self.cluster = cluster
        self.service = service
        self.duration = duration
        self.activity = activity or ActivityModel(seed=seed)
        self.think_time = think_time
        self.batch_probability = batch_probability
        self.batch_width = batch_width
        self.batch_unit_cpu = batch_unit_cpu
        self.sample_period = sample_period
        self.lifetimes = ZhouLifetimes(seed=seed ^ 0x5EED)
        self.report = UsageReport(
            duration=duration, hosts=len(cluster.hosts)
        )
        self._rng = np.random.default_rng(seed ^ 0xACE)

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Attach activity traces and owner job generators to each host."""
        for index, host in enumerate(self.cluster.hosts):
            intervals = self.activity.generate_intervals(index, self.duration)
            ActivityDriver(host, intervals)
            spawn(
                self.cluster.sim,
                self._owner_loop(host, index),
                name=f"owner:{host.name}",
                daemon=True,
            )
        spawn(
            self.cluster.sim, self._sampler(), name="idle-sampler", daemon=True
        )

    def run(self) -> UsageReport:
        self.install()
        self.cluster.run(until=self.duration)
        return self.finalize()

    def finalize(self) -> UsageReport:
        report = self.report
        report.cpu_seconds = sum(h.cpu.total_demand for h in self.cluster.hosts)
        records = self.cluster.migration_records()
        completed = [r for r in records if not r.refused]
        report.migrations_total = len(completed)
        by_reason = records_by_reason(completed)
        report.remote_execs = len(by_reason.get("exec", []))
        report.eviction_victims = len(by_reason.get("eviction", []))
        report.evictions = sum(
            len(evictor.events) for evictor in self.cluster.evictors
        )
        return report

    # ------------------------------------------------------------------
    def _owner_loop(self, host: Host, index: int) -> Generator[Effect, None, None]:
        rng = np.random.default_rng((self._rng.integers(2**31) + index) % 2**31)
        client = self.service.mig_client(host)
        while True:
            yield Sleep(float(rng.exponential(self.think_time)))
            if not host.user_present:
                continue
            if rng.random() < self.batch_probability:
                self.report.batches += 1
                width = int(rng.integers(2, self.batch_width + 1))
                self.report.batch_jobs += width
                pcb, _ = host.spawn_process(
                    self._batch_coordinator_program(client, width, rng),
                    name=f"batch:{host.name}",
                )
            else:
                self.report.interactive_jobs += 1
                cpu = min(self.lifetimes.sample(), 120.0)
                host.spawn_process(_interactive_job, cpu, name="interactive")

    def _batch_coordinator_program(self, client, width: int, rng):
        unit_cpus = [
            float(rng.exponential(self.batch_unit_cpu)) for _ in range(width)
        ]

        def coordinator(proc):
            jobs = [
                (_batch_unit, (cpu,), f"unit{i}")
                for i, cpu in enumerate(unit_cpus)
            ]
            yield from client.run_batch(proc, jobs, image_path="/bin/sim")
            return 0

        return coordinator

    def _sampler(self) -> Generator[Effect, None, None]:
        while True:
            yield Sleep(self.sample_period)
            idle = sum(1 for host in self.cluster.hosts if host.is_available())
            self.report.idle_samples.append(idle / len(self.cluster.hosts))
