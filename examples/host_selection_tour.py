#!/usr/bin/env python
"""Tour of the four host-selection architectures (ch. 6).

Runs the same request workload — a client repeatedly asking for idle
hosts while owners come and go — under all four designs the thesis
compares, and prints the trade-off table: request latency, control
messages, and conflicts (stale selections).

Run:  python examples/host_selection_tour.py
"""

from repro import SpriteCluster
from repro.loadsharing import ARCHITECTURES, LoadSharingService
from repro.metrics import Table
from repro.sim import Sleep, run_until_complete


def exercise(architecture, hosts=8, rounds=12):
    cluster = SpriteCluster(workstations=hosts, start_daemons=True)
    service = LoadSharingService(cluster, architecture=architecture)
    cluster.run(until=60.0)   # daemons gossip / announce / post
    messages_before = cluster.lan.messages_sent
    selector = service.selector_for(cluster.hosts[0])

    def client():
        got_total = 0
        for round_index in range(rounds):
            granted = yield from selector.request(2)
            got_total += len(granted)
            yield Sleep(2.0)
            yield from selector.release(granted)
            yield Sleep(3.0)
        return got_total

    granted_total = run_until_complete(cluster.sim, client(), name="client")
    return {
        "granted": granted_total,
        "latency_ms": 1000.0 * selector.metrics.mean_latency(),
        "messages": cluster.lan.messages_sent - messages_before,
        "conflicts": service.total_conflicts(),
    }


def main():
    table = Table(
        title="Host selection architectures (cf. thesis Table 6.2)",
        columns=["architecture", "hosts granted", "mean latency (ms)",
                 "LAN messages", "conflicts"],
        notes="same request pattern everywhere; messages include the "
              "facility's own update/gossip traffic over the run",
    )
    for architecture in ARCHITECTURES:
        stats = exercise(architecture)
        table.add_row(
            architecture, stats["granted"], stats["latency_ms"],
            stats["messages"], stats["conflicts"],
        )
        print(f"{architecture}: {stats}")
    table.show()
    print("the thesis's conclusion: the centralized server gives "
          "single-assignment guarantees and global policy at a latency "
          "the alternatives cannot beat by much — and scales further "
          "than multicast or per-host gossip.")


if __name__ == "__main__":
    main()
