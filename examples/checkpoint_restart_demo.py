#!/usr/bin/env python
"""Checkpoint/restart with ``repro.checkpoint`` — migration's rival.

Three vignettes:

1. A registered process is checkpointed on an interval; its host
   crashes; the restart manager revives it on a surviving host from
   the newest intact image, and the job finishes with the progress its
   image banked.
2. A crash *during* an image write leaves a torn (unsealed) image; the
   digest check catches it and restore falls back to the previous
   intact generation.
3. The tradeoff in one line each: the chaos gauntlet under the
   ``migrate``, ``checkpoint``, and ``hybrid`` fault policies at the
   same seed — availability and goodput side by side.

Run:  python examples/checkpoint_restart_demo.py
"""

from repro import SpriteCluster
from repro.checkpoint import CheckpointService
from repro.faults import run_chaos
from repro.sim import Sleep, spawn


def checkpoint_then_crash():
    print("=== 1. periodic checkpoints, crash, restart elsewhere ===")
    cluster = SpriteCluster(workstations=3, seed=7)
    cluster.standard_images()
    injector = cluster.faults()
    service = CheckpointService(cluster, injector=injector, interval=2.0)
    a = cluster.hosts[0]

    def job(proc, work):
        # Restart-aware: cpu_time survives in the image, so a restored
        # copy only re-runs the remainder (epsilon guards float residue).
        while work - proc.pcb.cpu_time > 1e-6:
            yield from proc.compute(min(1.0, work - proc.pcb.cpu_time))
        return 0

    pcb, _ = a.spawn_process(job, 10.0, name="worker")
    service.register(pcb, job, 10.0)

    def chaos():
        yield Sleep(5.0)
        print(f"  t=5: crashing {a.name} "
              f"(worker progress {pcb.cpu_time:.1f}s of 10.0s)")
        injector.crash_host(a)
        yield Sleep(20.0)
        injector.heal_all()

    spawn(cluster.sim, chaos(), name="demo-chaos", daemon=True)
    cluster.run(until=60.0)
    stats = service.stats()
    print(f"  checkpoints taken: {stats['checkpoints']}, "
          f"restores: {stats['restores']}")
    print(f"  worker finished: {pcb.task.done and pcb.task.result == 0}, "
          f"restored with {pcb.restored_progress:.1f}s banked, "
          f"now on host address {pcb.current}")


def torn_image_fallback():
    print("=== 2. torn image detected by digest, fallback generation ===")
    cluster = SpriteCluster(workstations=2, seed=8)
    cluster.standard_images()
    service = CheckpointService(cluster, interval=3.0)
    a = cluster.hosts[0]

    def job(proc, work):
        while work - proc.pcb.cpu_time > 1e-6:
            yield from proc.compute(min(1.0, work - proc.pcb.cpu_time))
        return 0

    pcb, _ = a.spawn_process(job, 30.0, name="slow")
    service.register(pcb, job, 30.0)
    cluster.run(until=10.0)

    # Simulate a write the crash interrupted: a newer, unsealed image.
    torn = service.store.begin(pcb.pid, pcb.name, "full")
    torn.progress = 999.0  # never trusted: the digest is missing
    intact = service.store.latest_intact(pcb.pid)
    print(f"  generations on file: "
          f"{[im.seq for im in service.store.images[pcb.pid]]}, "
          f"torn seq {torn.seq} intact={torn.intact}")
    print(f"  restore would use seq {intact.seq} "
          f"(progress {intact.progress:.1f}s), "
          f"skipping {service.store.torn_after(intact)} torn image(s)")


def policy_tradeoff():
    print("=== 3. migrate vs checkpoint vs hybrid, same seed ===")
    for policy in ("migrate", "checkpoint", "hybrid"):
        report = run_chaos(
            seed=2, workstations=4, duration=60.0, jobs=5,
            random_churn=True, mtbf=25.0,
            policy=policy, checkpoint_interval=5.0, job_memory=64 * 1024,
        )
        print(f"  {policy:<11} availability {report.availability:.2f}  "
              f"goodput {report.goodput:.3f}  "
              f"checkpoints {report.checkpoints}  "
              f"restores {report.restores}  "
              f"migrations {report.migrations}  "
              f"clean={report.clean}")


if __name__ == "__main__":
    checkpoint_then_crash()
    print()
    torn_image_fallback()
    print()
    policy_tradeoff()
