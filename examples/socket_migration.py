#!/usr/bin/env python
"""Internet sockets across migration (the [Che87] design).

Sprite proxies TCP/UDP through a user-level Internet server behind a
pseudo-device, so a process's sockets are location-independent: this
demo migrates a client mid-conversation with a server process on a
third machine, and the byte stream continues unbroken.

Run:  python examples/socket_migration.py
"""

from repro import SpriteCluster
from repro.inet import InternetServer, Sockets
from repro.sim import Sleep, spawn


def main():
    cluster = SpriteCluster(workstations=4, start_daemons=False)
    ip_host = cluster.hosts[3]
    ip_server = InternetServer(ip_host)
    ip_server.start()
    server_host, client_home, client_target = (
        cluster.hosts[0], cluster.hosts[1], cluster.hosts[2]
    )
    client_pcb_holder = []

    def tcp_server(proc):
        net = Sockets(proc)
        listener = yield from net.socket("stream")
        yield from net.bind(listener, 80)
        yield from net.listen(listener)
        conn = yield from net.accept(listener)
        total = 0
        while True:
            got = yield from net.recv(conn, 65536)
            if got == 0:
                break
            total += got
            print(f"[t={proc.now:6.2f}s] server received {got} bytes "
                  f"(total {total})")
        return total

    def tcp_client(proc):
        client_pcb_holder.append(proc.pcb)
        net = Sockets(proc)
        sock = yield from net.socket("stream")
        yield from proc.sleep(0.5)
        yield from net.connect(sock, 80)
        for round_index in range(5):
            yield from net.send(sock, 8_192)
            where = next(h.name for h in cluster.hosts
                         if h.address == proc.pcb.current)
            print(f"[t={proc.now:6.2f}s] client sent 8 KB from {where}")
            yield from proc.compute(1.0)
        yield from net.close(sock)
        return 0

    server_pcb, _ = server_host.spawn_process(tcp_server, name="tcpd")
    client_pcb, _ = client_home.spawn_process(tcp_client, name="client")

    def migrate_client():
        yield Sleep(2.2)
        victim = client_pcb_holder[0]
        print(f"[t={cluster.sim.now:6.2f}s] migrating the client "
              f"{client_home.name} -> {client_target.name} mid-conversation")
        yield from cluster.managers[victim.current].migrate(
            victim, client_target.address
        )

    spawn(cluster.sim, migrate_client(), name="migrator")
    total = cluster.run_until_complete(server_pcb.task)
    print(f"\nserver total: {total} bytes — the connection never noticed "
          f"the client moved (IP server switched "
          f"{ip_server.bytes_switched} bytes)")


if __name__ == "__main__":
    main()
