#!/usr/bin/env python
"""Fault tolerance, driven by the ``repro.faults`` chaos engine.

Four vignettes reproducing the thesis's fault-handling arguments:

1. A migration target crashes after accepting: the transfer aborts
   before the commit point and the process resumes at the source.
2. The central host-selection server crashes: requests degrade to
   local execution; after a restart, hosts re-announce within one
   availability period (the thesis's restart-beats-replication
   position).
3. A file server crashes: clients hold their delayed-write data, and
   the stateful-server recovery protocol rebuilds the server's open/
   caching state from the clients' reopens.
4. The whole gauntlet at once: ``run_chaos`` runs a migrating workload
   under a scripted fault plan and audits the cluster invariants.

Run:  python examples/fault_tolerance_demo.py
"""

from repro import SpriteCluster
from repro.faults import run_chaos
from repro.fs import OpenMode
from repro.loadsharing import LoadSharingService
from repro.migration import MigrationRefused
from repro.sim import Sleep, run_until_complete, spawn


def aborted_migration():
    print("=== 1. target crashes mid-transfer: pre-commit abort ===")
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    cluster.params.rpc_timeout = 0.5
    cluster.params.rpc_retries = 0
    a, b = cluster.hosts[0], cluster.hosts[1]
    cluster.add_file("/data", size=100_000)
    injector = cluster.faults()

    # Crash the target the instant the install RPC arrives.
    def crashing_install(payload):
        injector.crash_host(b)
        yield Sleep(10.0)

    cluster.managers[b.address].host.rpc.register("mig.install", crashing_install)

    def job(proc):
        fd = yield from proc.open("/data", OpenMode.READ)
        yield from proc.read(fd, 50_000)
        yield from proc.compute(3.0)
        more = yield from proc.read(fd, 50_000)
        yield from proc.close(fd)
        return (proc.pcb.current, more)

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.5)
        try:
            yield from cluster.managers[a.address].migrate(pcb, b.address)
        except MigrationRefused as refusal:
            print(f"  migration aborted: {refusal}")

    spawn(cluster.sim, driver(), name="driver")
    where, more = cluster.run_until_complete(pcb.task)
    host = next(h.name for h in cluster.hosts if h.address == where)
    print(f"  process finished on {host} with its stream intact "
          f"(read {more} more bytes after the abort)\n")


def migd_crash_restart():
    print("=== 2. migd crashes and restarts ===")
    cluster = SpriteCluster(workstations=4, start_daemons=True)
    service = LoadSharingService(cluster, architecture="centralized")
    injector = cluster.faults(service=service)
    cluster.run(until=45.0)
    selector = service.selector_for(cluster.hosts[0])

    def scenario():
        granted = yield from selector.request(2)
        print(f"  before crash: granted {len(granted)} hosts")
        yield from selector.release(granted)
        injector.kill_migd()
        granted = yield from selector.request(2)
        print(f"  during outage: granted {len(granted)} hosts "
              f"(degraded to local execution, no hang)")
        injector.restart_migd()
        yield Sleep(3 * cluster.params.availability_period)
        granted = yield from selector.request(2)
        print(f"  after restart: granted {len(granted)} hosts "
              f"(hosts re-announced within one period)\n")
        yield from selector.release(granted)

    run_until_complete(cluster.sim, scenario(), name="scenario")


def server_crash_recovery():
    print("=== 3. file-server crash + stateful recovery ===")
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    cluster.params.rpc_timeout = 0.5
    cluster.params.rpc_retries = 0
    host = cluster.hosts[0]
    injector = cluster.faults()

    def scenario(proc):
        fd = yield from proc.open("/journal", OpenMode.WRITE | OpenMode.CREATE)
        yield from proc.write(fd, 64 * 1024)
        print(f"  wrote 64 KB (delayed-write: server has "
              f"{cluster.file_server.bytes_written} bytes)")
        injector.crash_server(0)
        print("  server crashed: open/caching state lost, disk intact")
        injector.restart_server(0)   # re-drives every client's recovery
        yield Sleep(1.0)
        print(f"  recovery: {cluster.file_server.bytes_written} bytes "
              f"re-flushed from the client cache")
        yield from proc.close(fd)
        info = yield from proc.stat("/journal")
        print(f"  /journal after recovery: {info['size']} bytes — "
              f"no delayed-write data lost\n")
        return 0

    cluster.run_process(host, scenario, name="recovery")


def chaos_gauntlet():
    print("=== 4. the full gauntlet: run_chaos + invariant audit ===")
    report = run_chaos(seed=0, workstations=4, duration=60.0, jobs=6)
    print(f"  {report.jobs} jobs: {report.jobs_finished} finished, "
          f"{report.jobs_lost} lost to crashes")
    print(f"  {report.migrations} migrations, {report.refusals} refusals, "
          f"{report.faults} faults injected")
    for event in report.events:
        print(f"    {event}")
    verdict = "clean" if report.clean else "VIOLATED"
    print(f"  invariants: {verdict}; trace fingerprint "
          f"{report.fingerprint[:16]}")
    print("  (same seed + same plan => byte-identical trace)")


if __name__ == "__main__":
    aborted_migration()
    migd_crash_restart()
    server_crash_recovery()
    chaos_gauntlet()
