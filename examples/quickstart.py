#!/usr/bin/env python
"""Quickstart: migrate a running process and watch transparency hold.

Builds a four-workstation Sprite cluster, starts a process that
computes and reads a file, migrates it to another host mid-flight, and
then demonstrates the thesis's transparency properties: the process
keeps its pid, its open file (offset intact), and still believes it is
on its home machine — while its CPU time accrues on the target.

Run:  python examples/quickstart.py
"""

from repro import MB, SpriteCluster
from repro.fs import OpenMode
from repro.sim import Sleep, spawn


def worker(proc):
    """A process with state worth migrating: memory, a file, compute."""
    yield from proc.use_memory(2 * MB)
    fd = yield from proc.open("/data/input", OpenMode.READ)
    yield from proc.read(fd, 100_000)

    checkpoints = []
    for phase in range(4):
        yield from proc.compute(2.0)
        where = proc.pcb.current                      # physical location
        hostname = yield from proc.gethostname()      # what the process sees
        offset = proc.pcb.stream(fd).offset
        checkpoints.append((proc.now, phase, where, hostname, offset))
    yield from proc.read(fd, 100_000)                 # offset continues
    yield from proc.close(fd)
    return checkpoints


def main():
    cluster = SpriteCluster(workstations=4, start_daemons=False)
    cluster.add_file("/data/input", size=1_000_000)
    home, target = cluster.hosts[0], cluster.hosts[2]

    pcb, _ctx = home.spawn_process(worker, name="worker")
    print(f"started pid {pcb.pid} on {home.name} (home address {home.address})")

    def migrate_later():
        yield Sleep(3.0)
        print(f"[t={cluster.sim.now:.2f}s] migrating pid {pcb.pid} "
              f"{home.name} -> {target.name} ...")
        record = yield from cluster.managers[home.address].migrate(
            pcb, target.address, reason="manual"
        )
        print(f"[t={cluster.sim.now:.2f}s] migrated: total "
              f"{record.total_time*1000:.1f} ms, freeze "
              f"{record.freeze_time*1000:.1f} ms, "
              f"{record.streams_moved} stream(s) moved")
        shadow = [e for e in home.kernel.ps() if e["pid"] == pcb.pid]
        print(f"home kernel's process table now shows: {shadow[0]}")

    spawn(cluster.sim, migrate_later(), name="migrator")
    checkpoints = cluster.run_until_complete(pcb.task)

    print("\nphase  t(s)    physical-host  gethostname  file-offset")
    for t, phase, where, hostname, offset in checkpoints:
        physical = next(h.name for h in cluster.hosts if h.address == where)
        print(f"  {phase}   {t:6.2f}   {physical:<13} {hostname:<11} {offset}")

    print(f"\nCPU consumed — {home.name}: {home.cpu.total_demand:.2f}s, "
          f"{target.name}: {target.cpu.total_demand:.2f}s")
    print("transparency: the process always saw its home's hostname, kept "
          "its pid and file offset, yet finished on another machine.")


if __name__ == "__main__":
    main()
