#!/usr/bin/env python
"""Eviction: a returning user reclaims their workstation (ch. 8).

A simulation farm spreads long jobs onto idle workstations.  Partway
through, the owner of one host touches the keyboard; the eviction
daemon migrates the guest home within a second or so, and the job
finishes on its home machine.  The same scenario under rsh-style
placement (no migration) leaves the owner sharing their machine for the
rest of the job's lifetime — the contrast the thesis uses to argue that
migration buys workstation autonomy, not just throughput.

Run:  python examples/eviction_demo.py
"""

from repro import SpriteCluster
from repro.baselines import run_placement_scenario
from repro.loadsharing import LoadSharingService
from repro.sim import Sleep, spawn
from repro.workloads import SimFarm


def eviction_timeline():
    print("=== live eviction timeline ===")
    cluster = SpriteCluster(workstations=4, start_daemons=True)
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.standard_images()
    cluster.run(until=45.0)

    submitter = cluster.hosts[0]
    client = service.mig_client(submitter)
    farm = SimFarm(client, jobs=3, cpu_seconds=60.0)

    def coordinator(proc):
        result = yield from farm.run(proc)
        return result

    pcb, _ = submitter.spawn_process(coordinator, name="farm")

    returning = cluster.hosts[1]

    def owner_returns():
        yield Sleep(30.0)
        print(f"[t={cluster.sim.now:7.2f}s] owner touches keyboard on "
              f"{returning.name} (guests: "
              f"{[p.name for p in returning.kernel.foreign_pcbs()]})")
        returning.user_input()

    spawn(cluster.sim, owner_returns(), name="owner", daemon=True)
    result = cluster.run_until_complete(pcb.task)

    for evictor in cluster.evictors:
        for event in evictor.events:
            host = next(h for h in cluster.hosts if h.address == event.host)
            print(f"[t={event.time:7.2f}s] eviction on {host.name}: "
                  f"{event.victims} process(es) sent home in "
                  f"{event.reclaim_seconds*1000:.0f} ms")
    evicted = [r for r in cluster.migration_records()
               if r.reason == "eviction" and not r.refused]
    for record in evicted:
        print(f"           pid {record.pid} ({record.name}): freeze "
              f"{record.freeze_time*1000:.0f} ms, policy {record.policy}")
    print(f"farm finished: {result.jobs} jobs, effective utilization "
          f"{result.effective_utilization:.0f}%\n")


def autonomy_contrast():
    print("=== owner interference: placement-only vs Sprite eviction ===")
    for policy in ("placement", "sprite"):
        outcome = run_placement_scenario(
            policy, hosts=4, jobs=3, job_cpu=60.0, owners_return_after=20.0
        )
        print(f"  {policy:>10}: owner-interference "
              f"{outcome.owner_interference:7.1f} guest-busy seconds, "
              f"mean turnaround {outcome.mean_turnaround:6.1f}s, "
              f"evictions {outcome.evictions}")
    print("  (migration keeps owners' machines their own; placement-only "
          "leaves guests squatting)")


if __name__ == "__main__":
    eviction_timeline()
    autonomy_contrast()
