#!/usr/bin/env python
"""Parallel compilation with pmake across idle workstations (ch. 7).

Builds the same synthetic source tree sequentially and then with
increasing parallelism via the load-sharing facility, printing the
speedup curve the thesis's flagship experiment reports — including the
Amdahl ceiling imposed by the sequential link step and the file
server's name-lookup load.

Run:  python examples/parallel_make.py
"""

from repro import SpriteCluster
from repro.loadsharing import LoadSharingService
from repro.metrics import Table
from repro.workloads import Pmake, SourceTree


def build_once(hosts, jobs, files=10, compile_cpu=6.0, link_cpu=3.0):
    """One full cluster + one build; returns (result, server_lookups)."""
    cluster = SpriteCluster(workstations=hosts, start_daemons=True)
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.standard_images()
    tree = SourceTree(files=files, compile_cpu=compile_cpu, link_cpu=link_cpu)
    tree.populate(cluster)
    cluster.run(until=45.0)  # hosts announce availability

    coordinator_host = cluster.hosts[0]
    client = service.mig_client(coordinator_host) if jobs > 1 else None
    pmake = Pmake(tree, client=client, max_jobs=jobs)

    def coordinator(proc):
        result = yield from pmake.run(proc)
        return result

    pcb, _ = coordinator_host.spawn_process(coordinator, name="pmake")
    lookups_before = cluster.file_server.lookups
    result = cluster.run_until_complete(pcb.task)
    return result, cluster.file_server.lookups - lookups_before


def main():
    table = Table(
        title="pmake: parallel compilation speedup (cf. thesis ch. 7)",
        columns=["jobs", "hosts used", "elapsed (s)", "speedup",
                 "remote jobs", "server lookups"],
        notes="10 compiles + 1 link; sequential link bounds the speedup",
    )
    sequential, _ = build_once(hosts=10, jobs=1)
    print(f"sequential build: {sequential.elapsed:.1f}s "
          f"({sequential.targets_built} targets)")
    table.add_row(1, 1, sequential.elapsed, 1.0, 0, "-")
    for jobs in (2, 4, 6, 8):
        result, lookups = build_once(hosts=10, jobs=jobs)
        table.add_row(
            jobs,
            result.hosts_used + 1,
            result.elapsed,
            sequential.elapsed / result.elapsed,
            result.remote_jobs,
            lookups,
        )
        print(f"jobs={jobs}: {result.elapsed:.1f}s "
              f"(speedup {sequential.elapsed / result.elapsed:.2f}x)")
    table.show()


if __name__ == "__main__":
    main()
