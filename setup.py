"""Legacy setup shim: the offline environment lacks wheel/PEP-517 support."""

from setuptools import setup

setup()
