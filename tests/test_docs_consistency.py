"""Meta-tests: the documentation, CLI, and benchmark suite agree."""

import pathlib
import re

from repro.cli import DEMOS, EXPERIMENTS
from repro.report import EXPERIMENT_ORDER

REPO = pathlib.Path(__file__).resolve().parents[1]


def test_design_md_indexes_every_cli_experiment():
    design = (REPO / "DESIGN.md").read_text()
    for exp_id in EXPERIMENTS:
        assert re.search(rf"\|\s*{exp_id}\s*\|", design), (
            f"{exp_id} missing from DESIGN.md per-experiment index"
        )


def test_experiments_md_covers_every_cli_experiment():
    experiments = (REPO / "EXPERIMENTS.md").read_text()
    for exp_id in EXPERIMENTS:
        assert re.search(rf"\b{exp_id}\b", experiments), (
            f"{exp_id} missing from EXPERIMENTS.md"
        )


def test_report_index_covers_every_bench_archive_name():
    """Every archive() name used by the benchmarks is in the report index."""
    indexed = {name for name, _ in EXPERIMENT_ORDER}
    for bench in (REPO / "benchmarks").glob("bench_*.py"):
        for match in re.finditer(r'archive\(\s*"([^"]+)"', bench.read_text()):
            assert match.group(1) in indexed, (
                f"{bench.name} archives {match.group(1)!r}, "
                "not in report.EXPERIMENT_ORDER"
            )


def test_every_bench_file_is_reachable_from_cli():
    cli_files = set(EXPERIMENTS.values())
    actual = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
    assert actual == cli_files, (
        f"CLI missing: {actual - cli_files}; stale: {cli_files - actual}"
    )


def test_readme_mentions_every_demo():
    readme = (REPO / "README.md").read_text()
    for script in DEMOS.values():
        assert script in readme, f"README missing examples/{script}"


def test_design_substitution_table_present():
    design = (REPO / "DESIGN.md").read_text()
    assert "Why the substitution preserves behaviour" in design
    assert "repro band = 2/5" in design
