"""Edge-case coverage for the lower substrates."""

import pytest

from repro.config import ClusterParams
from repro.net import Lan, NetNode, Packet
from repro.sim import Simulator, spawn

from .helpers import MiniCluster


def test_broadcast_excludes_requested_addresses():
    sim = Simulator()
    lan = Lan(sim, params=ClusterParams())
    nodes = [NetNode(sim, f"n{i}") for i in range(4)]
    for node in nodes:
        lan.register(node)

    def sender():
        yield from lan.broadcast(
            Packet(nodes[0].address, 0, "q", None, 64),
            exclude=[nodes[2].address],
        )

    spawn(sim, sender())
    sim.run_until_idle()
    assert len(nodes[1].inbox) == 1
    assert len(nodes[2].inbox) == 0   # excluded
    assert len(nodes[3].inbox) == 1


def test_lan_utilization_tracks_medium_busy_time():
    sim = Simulator()
    lan = Lan(sim, params=ClusterParams().clone(
        net_latency=0.0, net_bandwidth=1_000_000.0))
    a, b = NetNode(sim, "a"), NetNode(sim, "b")
    lan.register(a)
    lan.register(b)

    def mover():
        yield from lan.transfer(a.address, b.address, 500_000)  # 0.5s

    spawn(sim, mover())
    sim.run()
    sim.run(until=1.0)
    assert lan.utilization() == pytest.approx(0.5, rel=0.05)


def test_server_disk_charged_on_cache_miss():
    """With a 0% server cache hit rate every read pays disk time."""
    slow = MiniCluster(clients=1, server_cache_hit_rate=0.0)
    fast = MiniCluster(clients=1, server_cache_hit_rate=1.0)
    for cluster in (slow, fast):
        cluster.server.add_file("/f", size=1_000_000)

    def scenario(cluster):
        fs = cluster.clients[0].fs

        def run():
            from repro.fs import OpenMode

            stream = yield from fs.open("/f", OpenMode.READ)
            start = cluster.sim.now
            yield from fs.read(stream, 1_000_000)
            yield from fs.close(stream)
            return cluster.sim.now - start

        return cluster.run(run())

    slow_time = scenario(slow)
    fast_time = scenario(fast)
    assert slow_time > fast_time


def test_packet_send_time_recorded():
    sim = Simulator()
    lan = Lan(sim, params=ClusterParams())
    a, b = NetNode(sim, "a"), NetNode(sim, "b")
    lan.register(a)
    lan.register(b)
    packet = Packet(a.address, b.address, "x", None, 64)

    def sender():
        yield from lan.transfer(a.address, a.address, 1)  # advance clock
        yield from lan.send(packet)

    spawn(sim, sender())
    sim.run_until_idle()
    assert packet.send_time > 0


def test_minicluster_param_overrides_flow_through():
    cluster = MiniCluster(clients=1, fs_block_size=8192)
    assert cluster.clients[0].fs.cache.block_size == 8192
    assert cluster.params.fs_block_size == 8192
