"""Tests for the baseline systems: rsh, Remote UNIX forwarding, Condor,
and the placement-vs-migration scenario."""

from repro import SpriteCluster
from repro.baselines import (
    CondorJob,
    CondorScheduler,
    ForwardingSurrogate,
    remote_unix_run,
    rsh_run,
    run_placement_scenario,
)
from repro.fs import OpenMode
from repro.sim import Sleep, spawn


def make_cluster(n=3, **kwargs):
    cluster = SpriteCluster(workstations=n, start_daemons=False, **kwargs)
    return cluster


# ----------------------------------------------------------------------
# rsh
# ----------------------------------------------------------------------
def test_rsh_runs_on_target_without_transparency():
    cluster = make_cluster(2)
    origin, target = cluster.hosts[0], cluster.hosts[1]

    def command(proc):
        name = yield from proc.gethostname()
        yield from proc.compute(1.0)
        return name

    def invoker(proc):
        result = yield from rsh_run(proc, target, command)
        return result

    result = cluster.run_process(origin, invoker, name="rsh")
    # rsh is NOT transparent: the command sees the remote host's name.
    assert result.value == target.name
    assert result.elapsed > 1.0
    # And the CPU burned on the target.
    assert target.cpu.total_demand >= 1.0


def test_rsh_process_homed_on_target():
    from repro.kernel import home_of_pid

    cluster = make_cluster(2)
    origin, target = cluster.hosts[0], cluster.hosts[1]

    def command(proc):
        yield from proc.compute(0.1)
        return 0

    def invoker(proc):
        result = yield from rsh_run(proc, target, command)
        return result.remote_pid

    pid = cluster.run_process(origin, invoker)
    assert home_of_pid(pid) == target.address


# ----------------------------------------------------------------------
# Remote UNIX forwarding (A2)
# ----------------------------------------------------------------------
def test_forwarding_executes_remotely_with_home_state():
    cluster = make_cluster(2)
    home, runner = cluster.hosts[0], cluster.hosts[1]
    cluster.add_file("/input", size=64 * 1024)
    surrogate = ForwardingSurrogate(home)

    def job(fwd):
        fd = yield from fwd.open("/input", OpenMode.READ)
        nread = yield from fwd.read(fd, 64 * 1024)
        yield from fwd.close(fd)
        yield from fwd.compute(1.0)
        name = yield from fwd.gethostname()
        return (nread, name)

    def launcher():
        task = yield from remote_unix_run(surrogate, runner, job)
        result = yield task.join()
        return result

    task = spawn(cluster.sim, launcher(), name="launcher")
    cluster.run_until_complete(task)
    nread, name = task.result
    assert nread == 64 * 1024
    assert name == home.name            # forwarded gethostname
    assert runner.cpu.total_demand >= 1.0
    assert surrogate.calls_served >= 4  # open, read, close, gethostname


def test_forwarding_data_double_hops():
    """Reads cost server->home + home->runner: more wire bytes than the
    transparent Sprite path."""
    cluster = make_cluster(2)
    home, runner = cluster.hosts[0], cluster.hosts[1]
    cluster.add_file("/big", size=256 * 1024)
    surrogate = ForwardingSurrogate(home)

    def job(fwd):
        fd = yield from fwd.open("/big", OpenMode.READ)
        yield from fwd.read(fd, 256 * 1024)
        yield from fwd.close(fd)
        return 0

    bytes_before = cluster.lan.bytes_sent

    def launcher():
        task = yield from remote_unix_run(surrogate, runner, job, image_bytes=1)
        yield task.join()

    task = spawn(cluster.sim, launcher(), name="launcher")
    cluster.run_until_complete(task)
    moved = cluster.lan.bytes_sent - bytes_before
    # The 256 KB crossed the wire twice (server->home fetch, home->runner
    # relay).
    assert moved >= 2 * 256 * 1024


def test_forwarding_every_trivial_call_pays_rpc():
    cluster = make_cluster(2)
    home, runner = cluster.hosts[0], cluster.hosts[1]
    surrogate = ForwardingSurrogate(home)

    def job(fwd):
        for _ in range(10):
            yield from fwd.gettimeofday()
        return 0

    def launcher():
        task = yield from remote_unix_run(surrogate, runner, job, image_bytes=1)
        yield task.join()

    calls_before = home.rpc.calls_served
    task = spawn(cluster.sim, launcher(), name="launcher")
    cluster.run_until_complete(task)
    assert surrogate.calls_served == 10


# ----------------------------------------------------------------------
# Condor checkpoint/restart
# ----------------------------------------------------------------------
def run_condor(cluster, scheduler, timeout=100_000.0):
    scheduler.start()
    def waiter():
        while not scheduler.all_done:
            yield Sleep(5.0)
    task = spawn(cluster.sim, waiter(), name="condor-waiter")
    cluster.run_until_complete(task)


def test_condor_completes_jobs_on_idle_hosts():
    cluster = SpriteCluster(workstations=3, start_daemons=True)
    cluster.run(until=45.0)
    scheduler = CondorScheduler(cluster, checkpoint_period=50.0)
    for i in range(4):
        scheduler.submit(CondorJob(job_id=i, cpu_seconds=30.0))
    run_condor(cluster, scheduler)
    assert len(scheduler.results) == 4
    assert all(r.job.finished_at is not None for r in scheduler.results)


def test_condor_checkpoints_cost_image_writes():
    cluster = SpriteCluster(workstations=2, start_daemons=True)
    cluster.run(until=45.0)
    scheduler = CondorScheduler(cluster, checkpoint_period=20.0)
    scheduler.submit(CondorJob(job_id=0, cpu_seconds=100.0, image_bytes=1024 * 1024))
    run_condor(cluster, scheduler)
    job = scheduler.results[0].job
    assert job.checkpoints >= 3
    assert cluster.file_server.bytes_written >= job.checkpoints * 1024 * 1024


def test_condor_eviction_loses_work_since_checkpoint():
    cluster = SpriteCluster(workstations=2, start_daemons=True)
    cluster.run(until=45.0)
    scheduler = CondorScheduler(cluster, checkpoint_period=1000.0)  # no checkpoints
    scheduler.submit(CondorJob(job_id=0, cpu_seconds=60.0))
    scheduler.start()

    # Owners return everywhere mid-job, then leave again; after the
    # input-idle threshold passes the hosts become reusable.
    def owner():
        yield Sleep(30.0)
        for host in cluster.hosts:
            host.user_input()
        yield Sleep(1.0)
        for host in cluster.hosts:
            host.user_leaves()

    spawn(cluster.sim, owner(), name="owner", daemon=True)

    def waiter():
        while not scheduler.all_done:
            yield Sleep(5.0)

    task = spawn(cluster.sim, waiter(), name="waiter")
    cluster.run_until_complete(task)
    job = scheduler.results[0].job
    assert scheduler.evictions >= 1
    assert job.restarts >= 1
    assert job.lost_cpu > 0          # work since the last checkpoint gone
    assert job.finished_at is not None


# ----------------------------------------------------------------------
# Placement vs migration (E11)
# ----------------------------------------------------------------------
def test_placement_scenario_interference_contrast():
    placement = run_placement_scenario(
        "placement", hosts=4, jobs=3, job_cpu=60.0, owners_return_after=20.0
    )
    sprite = run_placement_scenario(
        "sprite", hosts=4, jobs=3, job_cpu=60.0, owners_return_after=20.0
    )
    # Sprite evicts; placement-only does not.
    assert sprite.evictions >= 1
    assert placement.evictions == 0
    # Owners suffer far longer under placement-only.
    assert placement.owner_interference > 5 * max(sprite.owner_interference, 1.0)
    # Both complete all jobs.
    assert len(placement.turnarounds) == 3
    assert len(sprite.turnarounds) == 3
