"""Failure injection: crashed hosts, dead servers, aborted migrations.

Faults are driven through :mod:`repro.faults` (the chaos engine);
``test_target_crash_during_install_rolls_back`` is kept in the old
handler-sabotage style on purpose, as a regression test that raw RPC
surgery still composes with the migration protocol.
"""

from repro import SpriteCluster
from repro.fs import OpenMode
from repro.loadsharing import LoadSharingService
from repro.migration import MigrationRefused
from repro.net import NetworkPartitionedError, RpcTimeout
from repro.sim import Sleep, run_until_complete, spawn


def test_read_from_crashed_server_times_out():
    cluster = SpriteCluster(
        workstations=1, start_daemons=False,
    )
    cluster.params.rpc_timeout = 0.5
    cluster.params.rpc_retries = 0
    cluster.add_file("/f", size=4096)
    injector = cluster.faults()

    def job(proc):
        fd = yield from proc.open("/f", OpenMode.READ)
        cluster.server_hosts[0].node.up = False
        try:
            # Cached? No: first read, must go to the server.
            yield from proc.read(fd, 4096)
        except RpcTimeout:
            return "timeout"
        return "read-ok"

    assert cluster.run_process(cluster.hosts[0], job) == "timeout"


def test_read_from_partitioned_server_fails_fast():
    """Unlike a silent crash (timeout), a partition is detected at the
    fabric and surfaces immediately as NetworkPartitionedError."""
    cluster = SpriteCluster(workstations=1, start_daemons=False)
    cluster.params.rpc_retries = 0
    cluster.add_file("/f", size=4096)
    injector = cluster.faults()

    def job(proc):
        fd = yield from proc.open("/f", OpenMode.READ)
        injector.partition([cluster.hosts[0]])
        started = proc.sim.now
        try:
            yield from proc.read(fd, 4096)
        except NetworkPartitionedError:
            return proc.sim.now - started
        return None

    elapsed = cluster.run_process(cluster.hosts[0], job)
    assert elapsed is not None
    assert elapsed < cluster.params.rpc_timeout


def test_migration_to_crashed_target_aborts_cleanly():
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    cluster.params.rpc_timeout = 0.5
    cluster.params.rpc_retries = 0
    a, b = cluster.hosts[0], cluster.hosts[1]
    injector = cluster.faults()
    injector.crash_host(b)

    def job(proc):
        yield from proc.compute(3.0)
        return proc.pcb.current

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.5)
        try:
            yield from cluster.managers[a.address].migrate(pcb, b.address)
        except MigrationRefused as refusal:
            return f"refused: {refusal}"

    driver_task = spawn(cluster.sim, driver(), name="driver")
    final = cluster.run_until_complete(pcb.task)
    # The process never froze; it finished at the source.
    assert final == a.address
    assert "unreachable" in driver_task.result


def test_target_crash_during_install_rolls_back():
    """The target accepts, then dies before install: the process must
    resume on the source with its streams intact.  (Legacy style: the
    crash is a sabotaged RPC handler, not an injector action.)"""
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    cluster.params.rpc_timeout = 0.5
    cluster.params.rpc_retries = 0
    a, b = cluster.hosts[0], cluster.hosts[1]
    cluster.add_file("/data", size=200_000)

    # Sabotage the install handler: the host dies at that instant.
    def crashing_install(payload):
        b.node.up = False
        yield Sleep(10.0)   # never answers; the caller times out
        return None

    cluster.managers[b.address].host.rpc.register("mig.install", crashing_install)

    def job(proc):
        fd = yield from proc.open("/data", OpenMode.READ)
        yield from proc.read(fd, 50_000)
        yield from proc.compute(3.0)
        # After the failed migration the stream still works here.
        more = yield from proc.read(fd, 50_000)
        yield from proc.close(fd)
        return (proc.pcb.current, more)

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.5)
        try:
            yield from cluster.managers[a.address].migrate(pcb, b.address)
        except MigrationRefused:
            return "aborted"

    driver_task = spawn(cluster.sim, driver(), name="driver")
    where, more = cluster.run_until_complete(pcb.task)
    assert driver_task.result == "aborted"
    assert where == a.address
    assert more == 50_000
    refusals = [r for r in cluster.migration_records() if r.refused]
    assert len(refusals) == 1
    assert "install failed" in refusals[0].detail["refusal"]


def test_migd_crash_degrades_to_local_then_recovers():
    cluster = SpriteCluster(workstations=4, start_daemons=True)
    service = LoadSharingService(cluster, architecture="centralized")
    injector = cluster.faults(service=service)
    cluster.run(until=45.0)
    selector = service.selector_for(cluster.hosts[0])

    def before_crash():
        granted = yield from selector.request(2)
        yield from selector.release(granted)
        return granted

    granted = run_until_complete(cluster.sim, before_crash(), name="before")
    assert len(granted) == 2

    injector.kill_migd()

    def during_outage():
        granted = yield from selector.request(2)
        return granted

    granted = run_until_complete(cluster.sim, during_outage(), name="during")
    assert granted == []            # graceful degradation, no hang
    assert selector.failures >= 1

    # Restart: hosts re-announce within one availability period.
    injector.restart_migd()
    cluster.run(until=cluster.sim.now + 3 * cluster.params.availability_period)

    def after_restart():
        granted = yield from selector.request(2)
        return granted

    granted = run_until_complete(cluster.sim, after_restart(), name="after")
    assert len(granted) == 2


def test_eviction_daemon_survives_partitioned_home():
    """A partition (not a crash: home state must survive) makes the
    home unreachable mid-eviction; the daemon retries after the heal."""
    cluster = SpriteCluster(workstations=2, start_daemons=True)
    cluster.params.rpc_timeout = 0.5
    cluster.params.rpc_retries = 0
    a, b = cluster.hosts[0], cluster.hosts[1]
    injector = cluster.faults()

    def job(proc):
        yield from proc.compute(30.0)
        return proc.pcb.current

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.5)
        yield from cluster.managers[a.address].migrate(pcb, b.address)
        yield Sleep(2.0)
        injector.partition([a])   # home unreachable (state intact)
        b.user_input()            # owner returns: eviction will fail
        yield Sleep(5.0)
        injector.heal()
        b.user_input()            # daemon retries and succeeds

    spawn(cluster.sim, driver(), name="driver", daemon=True)
    final = cluster.run_until_complete(pcb.task)
    assert final == a.address
    assert cluster.evictors[1].failed_evictions >= 1
    assert len(cluster.evictors[1].events) >= 1


def test_rsh_squatter_survives_user_return_but_migration_guest_leaves():
    """Contrast test: rsh has no eviction path at all."""
    from repro.baselines import rsh_run

    cluster = SpriteCluster(workstations=2, start_daemons=True)
    origin, target = cluster.hosts[0], cluster.hosts[1]

    def squatter(proc):
        yield from proc.compute(20.0)
        return proc.pcb.current

    def invoker(proc):
        result = yield from rsh_run(proc, target, squatter)
        return result.value

    def owner_returns():
        yield Sleep(5.0)
        target.user_input()

    spawn(cluster.sim, owner_returns(), name="owner", daemon=True)
    where = cluster.run_process(origin, invoker, name="rsh")
    # The rsh process is native to the target: eviction cannot touch it.
    assert where == target.address
    assert all(not evictor.events for evictor in cluster.evictors)
