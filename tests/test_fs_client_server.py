"""Integration tests: FS clients against a server over the LAN."""

from repro.fs import FileNotFound, OpenMode
from repro.fs.protocol import OpenRequest

from .helpers import MiniCluster


def test_create_write_read_round_trip():
    cluster = MiniCluster(clients=1)
    fs = cluster.clients[0].fs

    def scenario():
        stream = yield from fs.open("/data", OpenMode.READ_WRITE | OpenMode.CREATE)
        written = yield from fs.write(stream, 10_000)
        assert written == 10_000
        yield from fs.seek(stream, 0)
        got = yield from fs.read(stream, 10_000)
        yield from fs.close(stream)
        return got

    assert cluster.run(scenario()) == 10_000


def test_open_missing_file_raises():
    cluster = MiniCluster(clients=1)
    fs = cluster.clients[0].fs

    def scenario():
        try:
            yield from fs.open("/missing", OpenMode.READ)
        except FileNotFound:
            return "not-found"

    assert cluster.run(scenario()) == "not-found"


def test_read_at_eof_returns_zero():
    cluster = MiniCluster(clients=1)
    cluster.server.add_file("/small", size=100)
    fs = cluster.clients[0].fs

    def scenario():
        stream = yield from fs.open("/small", OpenMode.READ)
        first = yield from fs.read(stream, 1000)
        second = yield from fs.read(stream, 1000)
        yield from fs.close(stream)
        return (first, second)

    assert cluster.run(scenario()) == (100, 0)


def test_cached_reread_avoids_server_traffic():
    cluster = MiniCluster(clients=1)
    cluster.server.add_file("/hot", size=40_960)
    fs = cluster.clients[0].fs

    def scenario():
        stream = yield from fs.open("/hot", OpenMode.READ)
        yield from fs.read(stream, 40_960)
        served_once = cluster.server.bytes_read
        yield from fs.seek(stream, 0)
        yield from fs.read(stream, 40_960)
        yield from fs.close(stream)
        return (served_once, cluster.server.bytes_read)

    first, second = cluster.run(scenario())
    assert first > 0
    assert second == first  # second read came from the client cache


def test_delayed_write_back_reaches_server():
    cluster = MiniCluster(clients=1)
    fs = cluster.clients[0].fs

    def scenario():
        stream = yield from fs.open("/log", OpenMode.WRITE | OpenMode.CREATE)
        yield from fs.write(stream, 8192)
        yield from fs.close(stream)

    cluster.run(scenario())
    assert cluster.server.bytes_written == 0  # still delayed in the cache
    cluster.sim.run(until=cluster.sim.now + 70.0)
    assert cluster.server.bytes_written == 8192


def test_sequential_write_sharing_flush_callback():
    """B reads after A wrote: the server must recall A's dirty data."""
    cluster = MiniCluster(clients=2)
    fs_a = cluster.clients[0].fs
    fs_b = cluster.clients[1].fs

    def writer():
        stream = yield from fs_a.open("/shared", OpenMode.WRITE | OpenMode.CREATE)
        yield from fs_a.write(stream, 4096)
        yield from fs_a.close(stream)

    cluster.run(writer())
    assert cluster.server.bytes_written == 0

    def reader():
        stream = yield from fs_b.open("/shared", OpenMode.READ)
        got = yield from fs_b.read(stream, 4096)
        yield from fs_b.close(stream)
        return got

    got = cluster.run(reader())
    assert got == 4096
    # A's delayed writes were flushed by the server's callback.
    assert cluster.server.bytes_written >= 4096
    assert cluster.server.consistency_callbacks >= 1


def test_concurrent_write_sharing_disables_caching():
    cluster = MiniCluster(clients=2)
    fs_a = cluster.clients[0].fs
    fs_b = cluster.clients[1].fs
    state = {}

    def scenario():
        a_stream = yield from fs_a.open("/conc", OpenMode.WRITE | OpenMode.CREATE)
        state["a_cacheable"] = a_stream.cacheable
        b_stream = yield from fs_b.open("/conc", OpenMode.WRITE)
        state["b_cacheable"] = b_stream.cacheable
        # B's writes now go straight to the server.
        yield from fs_b.write(b_stream, 4096)
        state["server_bytes"] = cluster.server.bytes_written
        yield from fs_a.close(a_stream)
        yield from fs_b.close(b_stream)

    cluster.run(scenario())
    assert state["a_cacheable"] is True
    assert state["b_cacheable"] is False
    assert state["server_bytes"] >= 4096


def test_version_bump_invalidates_stale_cache():
    cluster = MiniCluster(clients=2)
    fs_a = cluster.clients[0].fs
    fs_b = cluster.clients[1].fs

    def a_reads():
        stream = yield from fs_a.open("/v", OpenMode.READ)
        yield from fs_a.read(stream, 4096)
        yield from fs_a.close(stream)

    def b_writes():
        stream = yield from fs_b.open("/v", OpenMode.WRITE)
        yield from fs_b.write(stream, 4096)
        yield from fs_b.close(stream)

    cluster.server.add_file("/v", size=4096)
    cluster.run(a_reads())
    hits_before = cluster.clients[0].fs.cache.hits
    cluster.run(b_writes())

    def a_rereads():
        stream = yield from fs_a.open("/v", OpenMode.READ)
        yield from fs_a.read(stream, 4096)
        yield from fs_a.close(stream)
        return stream.version

    version = cluster.run(a_rereads())
    assert version >= 2
    # The reread could not hit A's stale cached block.
    assert cluster.clients[0].fs.cache.hits == hits_before


def test_stat_and_remove():
    cluster = MiniCluster(clients=1)
    cluster.server.add_file("/doomed", size=123)
    fs = cluster.clients[0].fs

    def scenario():
        info = yield from fs.stat("/doomed")
        yield from fs.remove("/doomed")
        try:
            yield from fs.stat("/doomed")
        except FileNotFound:
            return info["size"]

    assert cluster.run(scenario()) == 123


def test_payload_read_write_and_update():
    cluster = MiniCluster(clients=2)
    fs_a = cluster.clients[0].fs
    fs_b = cluster.clients[1].fs

    def scenario():
        yield from fs_a.payload_write("/ctrl", {"host1": 0.5})
        yield from fs_b.payload_write("/ctrl", {"host2": 1.5}, op="update")
        value = yield from fs_a.payload_read("/ctrl")
        return value

    assert cluster.run(scenario()) == {"host1": 0.5, "host2": 1.5}


def test_append_mode_starts_at_eof():
    cluster = MiniCluster(clients=1)
    cluster.server.add_file("/appendee", size=1000)
    fs = cluster.clients[0].fs

    def scenario():
        stream = yield from fs.open("/appendee", OpenMode.APPEND)
        assert stream.offset == 1000
        yield from fs.write(stream, 500)
        yield from fs.close(stream)
        info = yield from fs.stat("/appendee")
        return info["size"]

    assert cluster.run(scenario()) == 1500


def test_server_counts_name_lookups():
    cluster = MiniCluster(clients=1)
    fs = cluster.clients[0].fs
    cluster.server.add_file("/f", size=10)

    def scenario():
        for _ in range(5):
            stream = yield from fs.open("/f", OpenMode.READ)
            yield from fs.close(stream)

    before = cluster.server.lookups
    cluster.run(scenario())
    assert cluster.server.lookups - before == 5


def test_open_via_raw_rpc_matches_client_open():
    """The protocol dataclasses are usable directly (API stability)."""
    cluster = MiniCluster(clients=1)
    cluster.server.add_file("/raw", size=1)
    host = cluster.clients[0]

    def scenario():
        result = yield from host.rpc.call(
            cluster.server_host.address,
            "fs.open",
            OpenRequest(client=host.address, path="/raw", mode=OpenMode.READ),
        )
        return (result.size, result.cacheable)

    assert cluster.run(scenario()) == (1, True)


def test_multi_server_prefix_routing():
    cluster = MiniCluster(clients=1)
    # Add a second server owning /tmp.
    from repro.fs import FileServer
    from .helpers import FsHost

    tmp_host = FsHost(cluster.sim, cluster.lan, "tmpserver")
    tmp_server = FileServer(
        cluster.sim, cluster.lan, tmp_host.node, tmp_host.rpc, tmp_host.cpu,
        params=cluster.params, name="tmpserver",
    )
    cluster.prefixes.add("/tmp", tmp_host.address)
    fs = cluster.clients[0].fs

    def scenario():
        stream = yield from fs.open("/tmp/x", OpenMode.WRITE | OpenMode.CREATE)
        yield from fs.write(stream, 4096)
        yield from fs.close(stream)
        root = yield from fs.open("/rootfile", OpenMode.WRITE | OpenMode.CREATE)
        yield from fs.close(root)

    cluster.run(scenario())
    assert "/tmp/x" in tmp_server.files
    assert "/tmp/x" not in cluster.server.files
    assert "/rootfile" in cluster.server.files
