"""Unit tests for FIFO channels."""

import pytest

from repro.sim import Channel, ChannelClosed, Simulator, Sleep, spawn


def test_put_then_get():
    sim = Simulator()
    ch = Channel(sim)

    def producer():
        yield ch.put("hello")

    def consumer():
        item = yield ch.get()
        return item

    spawn(sim, producer())
    task = spawn(sim, consumer())
    sim.run()
    assert task.result == "hello"


def test_get_blocks_until_put():
    sim = Simulator()
    ch = Channel(sim)

    def consumer():
        item = yield ch.get()
        return (sim.now, item)

    def producer():
        yield Sleep(4.0)
        yield ch.put("late")

    task = spawn(sim, consumer())
    spawn(sim, producer())
    sim.run()
    assert task.result == (4.0, "late")


def test_fifo_ordering_of_items_and_getters():
    sim = Simulator()
    ch = Channel(sim)
    received = []

    def consumer(label):
        item = yield ch.get()
        received.append((label, item))

    def producer():
        for i in range(3):
            yield ch.put(i)

    spawn(sim, consumer("a"))
    spawn(sim, consumer("b"))
    spawn(sim, consumer("c"))
    spawn(sim, producer())
    sim.run()
    assert received == [("a", 0), ("b", 1), ("c", 2)]


def test_bounded_channel_blocks_putter():
    sim = Simulator()
    ch = Channel(sim, capacity=1)
    times = []

    def producer():
        yield ch.put("x")
        times.append(("put-x", sim.now))
        yield ch.put("y")
        times.append(("put-y", sim.now))

    def consumer():
        yield Sleep(5.0)
        item = yield ch.get()
        times.append(("got", item, sim.now))

    spawn(sim, producer())
    spawn(sim, consumer())
    sim.run()
    assert ("put-x", 0.0) in times
    put_y_time = [t for t in times if t[0] == "put-y"][0][1]
    assert put_y_time == 5.0


def test_try_put_and_try_get():
    sim = Simulator()
    ch = Channel(sim, capacity=1)
    assert ch.try_put("a") is True
    assert ch.try_put("b") is False
    ok, item = ch.try_get()
    assert ok and item == "a"
    ok, item = ch.try_get()
    assert not ok


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, capacity=0)


def test_close_wakes_blocked_getter():
    sim = Simulator()
    ch = Channel(sim)

    def consumer():
        try:
            yield ch.get()
        except ChannelClosed:
            return "closed"

    task = spawn(sim, consumer())
    sim.schedule(1.0, ch.close)
    sim.run()
    assert task.result == "closed"


def test_close_drains_buffered_items_first():
    sim = Simulator()
    ch = Channel(sim)
    ch.try_put(1)
    ch.try_put(2)
    ch.close()

    def consumer():
        got = []
        got.append((yield ch.get()))
        got.append((yield ch.get()))
        try:
            yield ch.get()
        except ChannelClosed:
            got.append("closed")
        return got

    task = spawn(sim, consumer())
    sim.run()
    assert task.result == [1, 2, "closed"]


def test_put_to_closed_channel_raises():
    sim = Simulator()
    ch = Channel(sim)
    ch.close()

    def producer():
        try:
            yield ch.put("x")
        except ChannelClosed:
            return "refused"

    task = spawn(sim, producer())
    sim.run()
    assert task.result == "refused"


def test_len_reflects_buffered_items():
    sim = Simulator()
    ch = Channel(sim)
    assert len(ch) == 0
    ch.try_put("a")
    ch.try_put("b")
    assert len(ch) == 2
