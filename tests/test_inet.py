"""Tests for the Internet server: sockets, and their migration
transparency (the [Che87] design the thesis relies on)."""

from repro import SpriteCluster
from repro.inet import InternetServer, SocketError, Sockets
from repro.sim import Sleep, spawn


def make_cluster(n=3):
    cluster = SpriteCluster(workstations=n, start_daemons=False)
    server = InternetServer(cluster.hosts[n - 1])
    server.start()
    return cluster, server


def test_dgram_send_receive():
    cluster, server = make_cluster(2)
    a = cluster.hosts[0]

    def receiver(proc):
        net = Sockets(proc)
        sock = yield from net.socket("dgram")
        yield from net.bind(sock, 7000)
        src, nbytes = yield from net.recvfrom(sock)
        yield from net.close(sock)
        return (src, nbytes)

    def sender(proc):
        net = Sockets(proc)
        sock = yield from net.socket("dgram")
        yield from net.bind(sock, 7001)
        yield from proc.sleep(0.5)
        yield from net.sendto(sock, 7000, 1500)
        yield from net.close(sock)
        return 0

    recv_pcb, _ = a.spawn_process(receiver, name="recv")
    a.spawn_process(sender, name="send")
    src, nbytes = cluster.run_until_complete(recv_pcb.task)
    assert (src, nbytes) == (7001, 1500)


def test_stream_connect_accept_send_recv():
    cluster, server = make_cluster(3)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def serve(proc):
        net = Sockets(proc)
        listener = yield from net.socket("stream")
        yield from net.bind(listener, 80)
        yield from net.listen(listener)
        conn = yield from net.accept(listener)
        total = 0
        while True:
            got = yield from net.recv(conn, 8192)
            if got == 0:
                break
            total += got
        yield from net.close(conn)
        yield from net.close(listener)
        return total

    def client(proc):
        net = Sockets(proc)
        sock = yield from net.socket("stream")
        yield from proc.sleep(0.5)   # let the server listen
        yield from net.connect(sock, 80)
        for _ in range(3):
            yield from net.send(sock, 10_000)
        yield from net.close(sock)
        return 0

    server_pcb, _ = a.spawn_process(serve, name="server")
    b.spawn_process(client, name="client")
    total = cluster.run_until_complete(server_pcb.task)
    assert total == 30_000


def test_connect_refused_without_listener():
    cluster, _server = make_cluster(2)

    def client(proc):
        net = Sockets(proc)
        sock = yield from net.socket("stream")
        try:
            yield from net.connect(sock, 9999)
        except SocketError as err:
            return f"refused: {err}"

    result = cluster.run_process(cluster.hosts[0], client)
    assert result.startswith("refused")


def test_port_collision_rejected():
    cluster, _server = make_cluster(2)

    def binder(proc):
        net = Sockets(proc)
        first = yield from net.socket("dgram")
        yield from net.bind(first, 500)
        second = yield from net.socket("dgram")
        try:
            yield from net.bind(second, 500)
        except SocketError:
            return "in-use"

    assert cluster.run_process(cluster.hosts[0], binder) == "in-use"


def test_socket_conversation_survives_migration():
    """The headline property: migrate one endpoint mid-conversation and
    the byte stream continues unbroken."""
    cluster, server = make_cluster(4)
    a, b, c = cluster.hosts[0], cluster.hosts[1], cluster.hosts[2]
    client_pcb_holder = []

    def serve(proc):
        net = Sockets(proc)
        listener = yield from net.socket("stream")
        yield from net.bind(listener, 80)
        yield from net.listen(listener)
        conn = yield from net.accept(listener)
        total = 0
        while True:
            got = yield from net.recv(conn, 65_536)
            if got == 0:
                break
            total += got
        return total

    def client(proc):
        client_pcb_holder.append(proc.pcb)
        net = Sockets(proc)
        sock = yield from net.socket("stream")
        yield from proc.sleep(0.5)
        yield from net.connect(sock, 80)
        for round_index in range(6):
            yield from net.send(sock, 5_000)
            yield from proc.compute(1.0)      # migration point
        yield from net.close(sock)
        return proc.pcb.current

    server_pcb, _ = a.spawn_process(serve, name="server")
    client_pcb, _ = b.spawn_process(client, name="client")

    def driver():
        yield Sleep(2.5)
        victim = client_pcb_holder[0]
        yield from cluster.managers[victim.current].migrate(victim, c.address)

    spawn(cluster.sim, driver(), name="driver")
    total = cluster.run_until_complete(server_pcb.task)
    client_final = cluster.run_until_complete(client_pcb.task)
    assert total == 30_000                 # nothing lost or duplicated
    assert client_final == c.address       # and the client really moved


def test_server_counts_traffic():
    cluster, server = make_cluster(2)

    def pair(proc):
        net = Sockets(proc)
        listener = yield from net.socket("stream")
        yield from net.bind(listener, 81)
        yield from net.listen(listener)

        def child(cproc):
            cnet = Sockets(cproc)
            sock = yield from cnet.socket("stream")
            yield from cnet.connect(sock, 81)
            yield from cnet.send(sock, 2048)
            yield from cnet.close(sock)
            return 0

        yield from proc.fork(child, name="peer")
        conn = yield from net.accept(listener)
        yield from net.recv(conn, 2048)
        yield from proc.wait()
        return 0

    cluster.run_process(cluster.hosts[0], pair)
    assert server.bytes_switched == 2048
    assert server.requests_handled >= 7


def test_dgram_sender_migrates_between_datagrams():
    cluster, server = make_cluster(4)
    a, b, c = cluster.hosts[0], cluster.hosts[1], cluster.hosts[2]
    sender_pcb_holder = []

    def receiver(proc):
        net = Sockets(proc)
        sock = yield from net.socket("dgram")
        yield from net.bind(sock, 9000)
        got = []
        for _ in range(4):
            src, nbytes = yield from net.recvfrom(sock)
            got.append(nbytes)
        return got

    def sender(proc):
        sender_pcb_holder.append(proc.pcb)
        net = Sockets(proc)
        sock = yield from net.socket("dgram")
        yield from net.bind(sock, 9001)
        yield from proc.sleep(0.5)
        for i in range(4):
            yield from net.sendto(sock, 9000, 1000 + i)
            yield from proc.compute(1.0)
        yield from net.close(sock)
        return proc.pcb.current

    recv_pcb, _ = a.spawn_process(receiver, name="recv")
    send_pcb, _ = b.spawn_process(sender, name="send")

    def driver():
        yield Sleep(2.0)
        victim = sender_pcb_holder[0]
        yield from cluster.managers[victim.current].migrate(victim, c.address)

    spawn(cluster.sim, driver(), name="driver")
    got = cluster.run_until_complete(recv_pcb.task)
    where = cluster.run_until_complete(send_pcb.task)
    assert got == [1000, 1001, 1002, 1003]
    assert where == c.address
