"""Tests for ``repro.snapshot``: COW cluster forks and the sweep runner.

The contract under test is the one ``docs/snapshots.md`` advertises:

* a fork is indistinguishable from a freshly built cluster — same
  workload, same seed, byte-identical trace fingerprint;
* forks are independent of the base, the original, and each other;
* a base with a fault plan and injector armed *before* the snapshot
  round-trips: the forked run replays the faults byte-identically;
* a cluster that has already run cannot be captured (clear error);
* the parallel sweep merge is deterministic: the crash-matrix
  fingerprint is identical for ``workers=1`` and ``workers=4``.
"""

from __future__ import annotations

import pytest

from repro.cluster import SpriteCluster
from repro.faults import (
    FaultInjector,
    FaultPlan,
    build_chaos_base,
    run_chaos,
    run_matrix,
    trace_fingerprint,
)
from repro.sim import Sleep, SnapshotError, spawn
from repro.snapshot import Snapshot, SweepError, SweepRunner, forked_map


# ----------------------------------------------------------------------
# Helpers: one small deterministic migration workload
# ----------------------------------------------------------------------
def build_base(seed: int = 7) -> SpriteCluster:
    cluster = SpriteCluster(workstations=3, seed=seed, trace=True)
    cluster.standard_images()
    return cluster


def _job(proc):
    yield from proc.compute(2.0)
    return 0


def run_workload(cluster: SpriteCluster, horizon: float = 30.0) -> str:
    """Spawn a job, migrate it once, run to ``horizon``; fingerprint."""
    home, target = cluster.hosts[0], cluster.hosts[1]
    pcb, _ctx = home.spawn_process(_job, name="snap-job")

    def driver():
        yield Sleep(0.5)
        yield from cluster.managers[home.address].migrate(
            pcb, target.address, reason="test"
        )

    spawn(cluster.sim, driver(), name="snap-driver", daemon=True)
    cluster.run(until=horizon)
    return trace_fingerprint(cluster.tracer)


# ----------------------------------------------------------------------
# Fork-equals-fresh golden
# ----------------------------------------------------------------------
def test_fork_equals_fresh_golden():
    fresh = run_workload(build_base())
    forked = run_workload(build_base().snapshot().fork())
    assert forked == fresh


def test_fork_is_deterministic_across_forks():
    snapshot = build_base().snapshot()
    assert run_workload(snapshot.fork()) == run_workload(snapshot.fork())


def test_snapshot_digest_is_stable():
    assert build_base().snapshot().digest == build_base().snapshot().digest


# ----------------------------------------------------------------------
# Fork independence
# ----------------------------------------------------------------------
def test_fork_independent_of_original_and_siblings():
    original = build_base()
    snapshot = original.snapshot()
    first = snapshot.fork()
    run_workload(first)  # dirty the first fork thoroughly
    # The original and a later sibling are untouched by the first
    # fork's run: both still replay the workload byte-identically.
    sibling_fp = run_workload(snapshot.fork())
    original_fp = run_workload(original)
    assert sibling_fp == original_fp
    assert first.sim.now > 0.0 and snapshot.fork().sim.now == 0.0


def test_fork_stream_ids_do_not_drift():
    # Per-cluster id state (satellite of the snapshot work): building
    # or forking any number of clusters in one process must not shift
    # id counters — that was the old module-global stream-id bug.
    fingerprints = {run_workload(build_base()) for _ in range(2)}
    snapshot = build_base().snapshot()
    fingerprints.add(run_workload(snapshot.fork()))
    assert len(fingerprints) == 1


# ----------------------------------------------------------------------
# Snapshot-after-fault round-trip
# ----------------------------------------------------------------------
def test_snapshot_with_armed_faults_round_trips():
    def armed(seed: int = 3) -> SpriteCluster:
        cluster = build_base(seed)
        plan = FaultPlan()
        plan.host_outage(4.0, cluster.hosts[2], 6.0)
        plan.partition(12.0, [cluster.hosts[0].address])
        plan.heal(16.0)
        FaultInjector(cluster, plan).start()
        return cluster

    fresh = run_workload(armed())
    forked = run_workload(armed().snapshot().fork())
    assert forked == fresh


def test_chaos_base_round_trips_with_service_extra():
    snapshot = build_chaos_base(seed=1, workstations=3)
    assert snapshot.meta["extras"] == ["service"]
    a = run_chaos(duration=20.0, jobs=3, base=snapshot)
    b = run_chaos(duration=20.0, jobs=3, base=snapshot.fork())
    assert a.fingerprint == b.fingerprint
    assert a.seed == 1 and a.workstations == 3


# ----------------------------------------------------------------------
# Capture preflight
# ----------------------------------------------------------------------
def test_snapshot_of_run_cluster_raises():
    cluster = build_base()
    cluster.run(until=1.0)  # daemons are now half-run generators
    with pytest.raises(SnapshotError):
        cluster.snapshot()


def test_snapshot_error_names_unpicklable_state():
    cluster = build_base()
    cluster.hosts[0].rpc.fallback = lambda packet: None
    with pytest.raises(SnapshotError, match="not snapshotable"):
        cluster.snapshot()


# ----------------------------------------------------------------------
# Sweep runner
# ----------------------------------------------------------------------
def _cell_fingerprint(cluster, cell):
    return run_workload(cluster, horizon=10.0 + cell)


def test_sweep_runner_matches_sequential_and_workers():
    snapshot = build_base().snapshot()
    cells = [0, 1, 2, 3]
    sequential = SweepRunner(snapshot, workers=1, cow=False).run(
        cells, _cell_fingerprint
    )
    forked_serial = SweepRunner(snapshot, workers=1).run(
        cells, _cell_fingerprint
    )
    forked_parallel = SweepRunner(snapshot, workers=4).run(
        cells, _cell_fingerprint
    )
    assert sequential == forked_serial == forked_parallel


def test_sweep_runner_live_base_stays_reusable():
    base = build_base()
    runner = SweepRunner(base, workers=2)
    first = runner.run([0, 1], _cell_fingerprint)
    assert base.sim.now == 0.0  # cells ran in forks, not in the parent
    assert runner.run([0, 1], _cell_fingerprint) == first


def test_sweep_runner_builder_mode():
    assert SweepRunner(build_base, workers=2).run(
        [0, 1], _cell_fingerprint
    ) == SweepRunner(build_base().snapshot(), workers=2).run(
        [0, 1], _cell_fingerprint
    )


def test_forked_map_propagates_child_failures():
    def job(index: int) -> int:
        if index == 1:
            raise ValueError("boom in child")
        return index

    with pytest.raises(SweepError, match="boom in child"):
        forked_map(job, 3, workers=2)


# ----------------------------------------------------------------------
# Crash matrix: fingerprint is worker-count-invariant
# ----------------------------------------------------------------------
def test_matrix_fingerprint_identical_any_worker_count():
    cells = [
        ("negotiated", "source", "crash"),
        ("shipped", "target", "partition"),
        ("committed", "home", "crash"),
        ("home_updated", "fs", "partition"),
    ]
    one = run_matrix(seed=0, cells=cells, horizon=60.0, workers=1)
    four = run_matrix(seed=0, cells=cells, horizon=60.0, workers=4)
    assert one.fingerprint == four.fingerprint
    assert [c.to_dict() for c in one.cells] == [
        c.to_dict() for c in four.cells
    ]
