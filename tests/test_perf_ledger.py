"""The longitudinal perf ledger (`tools/perf_ledger.py` via
`python -m repro perf`): entry construction, history append, and the
regression gate."""

import importlib.util
import json
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "perf_ledger", REPO_ROOT / "tools" / "perf_ledger.py"
)
ledger = importlib.util.module_from_spec(spec)
spec.loader.exec_module(ledger)


def payload(eps):
    return {
        "mode": "smoke",
        "results": {
            "task_resume": {"events": 1000, "wall_s": 0.1,
                            "events_per_s": eps},
            "raw_callback": {"events": 1000, "wall_s": 0.05,
                             "events_per_s": eps * 2},
        },
    }


def entry(eps, mode="smoke"):
    built = ledger.build_entry(
        smoke=(mode == "smoke"), benchmarks={"bench_engine": payload(eps)}
    )
    built["mode"] = mode
    return built


def test_throughput_metrics_flattens_events_per_s_leaves():
    metrics = ledger.throughput_metrics(entry(50_000.0))
    assert metrics == {
        "bench_engine.results.task_resume.events_per_s": 50_000.0,
        "bench_engine.results.raw_callback.events_per_s": 100_000.0,
    }


def test_entry_carries_commit_and_host_metadata():
    built = entry(1.0)
    assert built["commit"] and built["commit"] != ""
    assert set(built["host"]) == {"machine", "processor", "python"}
    assert built["stamp"].endswith("Z")


def test_gate_passes_within_slowdown():
    history = [entry(100_000.0)]
    assert ledger.check_regression(history, entry(60_000.0),
                                   slowdown=2.0) == []


def test_gate_fails_on_injected_synthetic_slowdown():
    # The acceptance criterion: halve throughput beyond the slowdown
    # floor and the gate must fail, naming the metric and the floor.
    history = [entry(100_000.0), entry(80_000.0)]
    failures = ledger.check_regression(history, entry(40_000.0),
                                       slowdown=2.0)
    assert len(failures) == 2  # both metrics regressed
    assert any("task_resume" in f and "regression floor" in f
               for f in failures)


def test_gate_compares_same_mode_only():
    # A fast full-mode recording must not raise the bar for smoke runs.
    history = [entry(1_000_000.0, mode="full")]
    assert ledger.check_regression(history, entry(10_000.0),
                                   slowdown=2.0) == []


def test_gate_first_entry_never_fails():
    assert ledger.check_regression([], entry(1.0), slowdown=2.0) == []


def test_gate_rejects_bad_slowdown():
    with pytest.raises(ValueError):
        ledger.check_regression([], entry(1.0), slowdown=1.0)


def test_append_entry_adds_one_entry_per_run(tmp_path):
    path = tmp_path / "BENCH_history.json"
    ledger.append_entry(path, entry(1.0))
    ledger.append_entry(path, entry(2.0))
    history = ledger.load_history(path)
    assert len(history) == 2
    assert json.loads(path.read_text()) == history


def test_load_history_rejects_non_list(tmp_path):
    path = tmp_path / "BENCH_history.json"
    path.write_text(json.dumps({"not": "a list"}))
    with pytest.raises(ValueError):
        ledger.load_history(path)


def test_committed_ledger_is_valid():
    # The repo ships a seeded ledger; CI appends to it every build.
    history = ledger.load_history(ledger.DEFAULT_HISTORY)
    assert history, "BENCH_history.json must ship with >= 1 entry"
    for item in history:
        assert ledger.throughput_metrics(item), item.get("stamp")
