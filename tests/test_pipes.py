"""Tests for pipes: blocking semantics and migration transparency."""

from repro import SpriteCluster
from repro.fs import PIPE_BUFFER_BYTES
from repro.sim import Sleep, spawn


def make_cluster(n=3):
    return SpriteCluster(workstations=n, start_daemons=False)


def test_pipe_basic_transfer():
    cluster = make_cluster(1)
    host = cluster.hosts[0]

    def parent(proc):
        read_fd, write_fd = yield from proc.pipe()

        def child(cproc):
            got = yield from cproc.read(read_fd, 1000)
            yield from cproc.exit(got)

        yield from proc.fork(child, name="reader")
        yield from proc.write(write_fd, 1000)
        status = yield from proc.wait()
        yield from proc.close(read_fd)
        yield from proc.close(write_fd)
        return status.code

    assert cluster.run_process(host, parent) == 1000


def test_pipe_read_blocks_until_write():
    cluster = make_cluster(1)
    host = cluster.hosts[0]
    times = {}

    def parent(proc):
        read_fd, write_fd = yield from proc.pipe()

        def reader(cproc):
            got = yield from cproc.read(read_fd, 100)
            times["read_done"] = cproc.now
            yield from cproc.exit(got)

        yield from proc.fork(reader, name="reader")
        yield from proc.sleep(3.0)
        yield from proc.write(write_fd, 100)
        status = yield from proc.wait()
        return status.code

    assert cluster.run_process(host, parent) == 100
    assert times["read_done"] >= 3.0


def test_pipe_writer_blocks_when_full():
    cluster = make_cluster(1)
    host = cluster.hosts[0]

    def parent(proc):
        read_fd, write_fd = yield from proc.pipe()

        def writer(cproc):
            # Two buffers' worth: must block until the reader drains.
            yield from cproc.write(write_fd, 2 * PIPE_BUFFER_BYTES)
            yield from cproc.exit(0)

        yield from proc.fork(writer, name="writer")
        yield from proc.sleep(2.0)
        drained = 0
        while drained < 2 * PIPE_BUFFER_BYTES:
            drained += yield from proc.read(read_fd, PIPE_BUFFER_BYTES)
        status = yield from proc.wait()
        return (status.code, proc.now)

    code, finished = cluster.run_process(host, parent)
    assert code == 0
    assert finished >= 2.0   # the writer had to wait for the drain


def test_pipe_eof_when_writer_closes():
    cluster = make_cluster(1)
    host = cluster.hosts[0]

    def parent(proc):
        read_fd, write_fd = yield from proc.pipe()
        yield from proc.write(write_fd, 500)
        yield from proc.close(write_fd)
        first = yield from proc.read(read_fd, 1000)
        second = yield from proc.read(read_fd, 1000)   # EOF, not a hang
        yield from proc.close(read_fd)
        return (first, second)

    assert cluster.run_process(host, parent) == (500, 0)


def test_pipe_broken_when_reader_closes():
    cluster = make_cluster(1)
    host = cluster.hosts[0]

    def parent(proc):
        read_fd, write_fd = yield from proc.pipe()
        yield from proc.close(read_fd)
        try:
            yield from proc.write(write_fd, 2 * PIPE_BUFFER_BYTES)
        except BrokenPipeError:
            yield from proc.close(write_fd)
            return "epipe"

    assert cluster.run_process(host, parent) == "epipe"


def test_pipe_survives_migration_of_reader():
    """The thesis's IPC transparency claim: migrate one endpoint of an
    active pipe and the conversation continues unbroken."""
    cluster = make_cluster(3)
    a, b = cluster.hosts[0], cluster.hosts[1]
    reader_pcb_holder = []

    def parent(proc):
        read_fd, write_fd = yield from proc.pipe()

        def reader(cproc):
            reader_pcb_holder.append(cproc.pcb)
            total = 0
            rounds = 0
            while total < 40_000:
                got = yield from cproc.read(read_fd, 10_000)
                total += got
                rounds += 1
                if rounds % 3 == 0:
                    yield from cproc.compute(0.5)   # migration point
            yield from cproc.exit(0 if total == 40_000 else 1)

        yield from proc.fork(reader, name="reader")
        for _ in range(4):
            yield from proc.write(write_fd, 10_000)
            yield from proc.sleep(1.5)
        status = yield from proc.wait()
        return (status.code, reader_pcb_holder[0].current)

    pcb, _ = a.spawn_process(parent, name="parent")

    def driver():
        yield Sleep(2.0)
        victim = reader_pcb_holder[0]
        yield from cluster.managers[victim.current].migrate(victim, b.address)

    spawn(cluster.sim, driver(), name="driver")
    code, reader_final = cluster.run_until_complete(pcb.task)
    assert code == 0                   # all 40 KB arrived despite the move
    assert reader_final == b.address   # and the reader really moved


def test_pipe_shared_by_fork_closes_cleanly():
    cluster = make_cluster(1)
    host = cluster.hosts[0]

    def parent(proc):
        read_fd, write_fd = yield from proc.pipe()

        def child(cproc):
            yield from cproc.write(write_fd, 100)
            yield from cproc.close(write_fd)   # child's reference
            yield from cproc.exit(0)

        yield from proc.fork(child, name="child")
        got = yield from proc.read(read_fd, 100)
        yield from proc.wait()
        yield from proc.close(write_fd)        # parent's reference
        yield from proc.close(read_fd)
        return got

    assert cluster.run_process(host, parent) == 100
