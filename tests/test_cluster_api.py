"""Coverage for the SpriteCluster facade API."""

import pytest

from repro import ClusterParams, SpriteCluster


def test_cluster_requires_hosts_and_servers():
    with pytest.raises(ValueError):
        SpriteCluster(workstations=0)
    with pytest.raises(ValueError):
        SpriteCluster(workstations=1, file_servers=0)


def test_host_lookup_by_name_and_address():
    cluster = SpriteCluster(workstations=3, start_daemons=False)
    host = cluster.hosts[1]
    assert cluster.host_by_name("ws1") is host
    assert cluster.host_by_address(host.address) is host
    with pytest.raises(KeyError):
        cluster.host_by_name("nope")
    with pytest.raises(KeyError):
        cluster.host_by_address(99999)


def test_manager_of_returns_hosts_manager():
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    host = cluster.hosts[0]
    assert cluster.manager_of(host) is cluster.managers[host.address]


def test_idle_hosts_reflects_availability():
    cluster = SpriteCluster(workstations=3, start_daemons=False)
    cluster.run(until=60.0)   # input-idle thresholds pass
    assert len(cluster.idle_hosts()) == 3
    cluster.hosts[0].user_input()
    assert len(cluster.idle_hosts()) == 2


def test_host_run_process_helper():
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    host_a, host_b = cluster.hosts

    def short(proc):
        yield from proc.compute(0.5)
        return "done"

    def launcher(proc):
        result = yield from host_b.run_process(short, name="short")
        return result

    assert cluster.run_process(host_a, launcher) == "done"


def test_total_cpu_seconds_accumulates():
    cluster = SpriteCluster(workstations=2, start_daemons=False)

    def burner(proc):
        yield from proc.compute(3.0)

    cluster.run_process(cluster.hosts[0], burner)
    assert cluster.total_cpu_seconds() == pytest.approx(3.0, abs=0.2)


def test_custom_params_flow_to_every_layer():
    params = ClusterParams().clone(fs_block_size=8192, migration_version=42)
    cluster = SpriteCluster(workstations=2, start_daemons=False, params=params)
    host = cluster.hosts[0]
    assert host.params.fs_block_size == 8192
    assert host.fs.cache.block_size == 8192
    assert cluster.managers[host.address].params.migration_version == 42
    assert cluster.file_server.params.fs_block_size == 8192


def test_seed_controls_reproducibility():
    def run_once(seed):
        cluster = SpriteCluster(workstations=2, start_daemons=False, seed=seed)
        cluster.add_file("/f", size=500_000)

        def job(proc):
            from repro.fs import OpenMode

            fd = yield from proc.open("/f", OpenMode.READ)
            yield from proc.read(fd, 500_000)   # disk hits are seeded RNG
            yield from proc.close(fd)
            return proc.now

        return cluster.run_process(cluster.hosts[0], job)

    assert run_once(7) == run_once(7)


def test_tracer_flag_controls_record_collection():
    quiet = SpriteCluster(workstations=1, start_daemons=False)
    loud = SpriteCluster(workstations=1, start_daemons=False, trace=True)
    for cluster in (quiet, loud):
        def job(proc):
            fd = yield from proc.open("/x", 0x2 | 0x4)   # write|create
            yield from proc.write(fd, 4096)
            yield from proc.close(fd)
            return 0
        cluster.run_process(cluster.hosts[0], job)
    assert len(quiet.tracer.records) == 0
    assert len(loud.tracer.records) > 0
