"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import DEMOS, EXPERIMENTS, build_parser, cmd_info, cmd_list, main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_parser_accepts_all_subcommands():
    parser = build_parser()
    assert parser.parse_args(["info"]).command == "info"
    assert parser.parse_args(["list"]).command == "list"
    assert parser.parse_args(["demo", "quickstart"]).name == "quickstart"
    assert parser.parse_args(["experiment", "E5"]).id == "E5"


def test_parser_rejects_unknown_demo():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["demo", "nonexistent"])


def test_info_prints_calibration_and_appendix(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "net_bandwidth" in out
    assert "Appendix A" in out
    assert "local" in out


def test_list_names_everything(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in DEMOS:
        assert name in out
    for exp_id in EXPERIMENTS:
        assert exp_id in out


def test_every_demo_script_exists():
    for script in DEMOS.values():
        assert (REPO_ROOT / "examples" / script).is_file(), script


def test_every_experiment_bench_exists():
    for script in EXPERIMENTS.values():
        assert (REPO_ROOT / "benchmarks" / script).is_file(), script


def test_demo_runs_quickstart(capsys):
    assert main(["demo", "quickstart"]) == 0
    out = capsys.readouterr().out
    assert "transparency" in out
