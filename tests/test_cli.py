"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import DEMOS, EXPERIMENTS, build_parser, main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_parser_accepts_all_subcommands():
    parser = build_parser()
    assert parser.parse_args(["info"]).command == "info"
    assert parser.parse_args(["list"]).command == "list"
    assert parser.parse_args(["demo", "quickstart"]).name == "quickstart"
    assert parser.parse_args(["experiment", "E5"]).id == "E5"


def test_parser_rejects_unknown_demo():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["demo", "nonexistent"])


def test_info_prints_calibration_and_appendix(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "net_bandwidth" in out
    assert "Appendix A" in out
    assert "local" in out


def test_list_names_everything(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in DEMOS:
        assert name in out
    for exp_id in EXPERIMENTS:
        assert exp_id in out


def test_every_demo_script_exists():
    for script in DEMOS.values():
        assert (REPO_ROOT / "examples" / script).is_file(), script


def test_every_experiment_bench_exists():
    for script in EXPERIMENTS.values():
        assert (REPO_ROOT / "benchmarks" / script).is_file(), script


def test_demo_runs_quickstart(capsys):
    assert main(["demo", "quickstart"]) == 0
    out = capsys.readouterr().out
    assert "transparency" in out


def test_parser_accepts_trace_with_filters():
    parser = build_parser()
    args = parser.parse_args(
        ["trace", "migration", "--kinds", "span,migrated", "--host", "ws0",
         "--span", "mig.", "--out", "/tmp/x"]
    )
    assert args.command == "trace"
    assert args.target == "migration"
    assert args.kinds == "span,migrated"
    assert args.host == "ws0"
    assert args.span == "mig."
    assert args.sample is None
    with pytest.raises(SystemExit):
        parser.parse_args(["trace", "not-a-target"])


def test_trace_migration_writes_artifacts(tmp_path, capsys):
    out = tmp_path / "trace"
    assert main(["trace", "migration", "--out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "migrations:" in printed
    assert "mig.migrate" in printed
    for name in ("trace.jsonl", "trace_chrome.json", "metrics.json",
                 "summary.txt"):
        assert (out / name).stat().st_size > 0, name
    import json

    doc = json.loads((out / "trace_chrome.json").read_text())
    events = doc["traceEvents"]
    assert events
    assert all("ph" in e and "ts" in e and "pid" in e for e in events)
    for line in (out / "trace.jsonl").read_text().splitlines():
        json.loads(line)
    json.loads((out / "metrics.json").read_text())


def test_trace_span_filter_limits_chrome_events(tmp_path):
    out = tmp_path / "filtered"
    assert main(["trace", "migration", "--out", str(out),
                 "--span", "mig."]) == 0
    import json

    doc = json.loads((out / "trace_chrome.json").read_text())
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert names and all(n.startswith("mig.") for n in names)


def test_trace_unmatched_filters_fail_loudly(tmp_path, capsys):
    # A filter that matches nothing is almost always a typo; the CLI
    # must exit non-zero with a clear message, not export empty files.
    cases = [
        (["--kinds", "no-such-kind"], "--kinds"),
        (["--host", "no-such-host"], "--host"),
        (["--span", "nope."], "--span"),
    ]
    for extra, flag in cases:
        out = tmp_path / flag.strip("-")
        assert main(["trace", "migration", "--out", str(out)] + extra) == 1
        err = capsys.readouterr().err
        assert "error:" in err and flag in err, err
        assert not out.exists(), "no artifacts on filter error"


def test_critpath_migration_prints_attribution(tmp_path, capsys):
    out = tmp_path / "critpath.txt"
    assert main(["critpath", "migration", "--out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "critical-path attribution (2 migrations):" in printed
    assert "= freeze" in printed
    assert "critical-path profile (whole run):" in printed
    assert out.read_text() in printed or printed.startswith(
        out.read_text()[:40]
    )


def test_critpath_profile_flag_appends_engine_profile(capsys):
    assert main(["critpath", "migration", "--profile"]) == 0
    printed = capsys.readouterr().out
    assert "engine profile:" in printed
    assert "by subsystem (shard candidates)" in printed


def test_critpath_report_is_deterministic(capsys):
    assert main(["critpath", "migration"]) == 0
    first = capsys.readouterr().out
    assert main(["critpath", "migration"]) == 0
    assert capsys.readouterr().out == first


def test_parser_accepts_critpath_and_perf():
    parser = build_parser()
    args = parser.parse_args(["critpath", "migration", "--limit", "10",
                              "--profile"])
    assert args.command == "critpath" and args.limit == 10 and args.profile
    args = parser.parse_args(["perf", "--smoke", "--no-gate",
                              "--history", "/tmp/h.json"])
    assert args.command == "perf" and args.smoke and args.no_gate
    with pytest.raises(SystemExit):
        parser.parse_args(["critpath", "not-a-target"])
