"""Unit tests of migd's selection policy as a pure state machine."""

from repro import SpriteCluster
from repro.loadsharing.migd import MigdServer


def make_migd():
    cluster = SpriteCluster(workstations=1, start_daemons=False)
    return MigdServer(cluster.hosts[0])


def update(migd, host, available=True, load=0.0, idle=100.0, time=0.0):
    return migd._handle(
        {
            "op": "update",
            "host": host,
            "load": load,
            "input_idle": idle,
            "available": available,
            "time": time,
        },
        client_host=host,
    )


def request(migd, client, n=1, exclude=()):
    return migd._handle(
        {"op": "request", "client": client, "n": n, "exclude": list(exclude)},
        client_host=client,
    )["hosts"]


def release(migd, client, hosts):
    return migd._handle(
        {"op": "release", "client": client, "hosts": list(hosts)},
        client_host=client,
    )


def test_request_prefers_longest_idle():
    migd = make_migd()
    update(migd, 10, time=50.0)   # idle since 50
    update(migd, 11, time=5.0)    # idle since 5 (longest idle)
    update(migd, 12, time=20.0)
    granted = request(migd, client=1, n=2)
    assert granted == [11, 12]


def test_request_excludes_requester_and_named():
    migd = make_migd()
    for host in (10, 11, 12):
        update(migd, host)
    granted = request(migd, client=10, n=5, exclude=[11])
    assert granted == [12]


def test_no_double_assignment():
    migd = make_migd()
    update(migd, 10)
    first = request(migd, client=1)
    second = request(migd, client=2)
    assert first == [10]
    assert second == []


def test_release_returns_host_to_pool():
    migd = make_migd()
    update(migd, 10)
    granted = request(migd, client=1)
    release(migd, 1, granted)
    assert request(migd, client=2) == [10]


def test_release_by_non_owner_ignored():
    migd = make_migd()
    update(migd, 10)
    request(migd, client=1)
    reply = release(migd, 2, [10])
    assert reply["released"] == 0
    assert request(migd, client=3) == []   # still held by client 1


def test_unavailable_update_drops_assignment():
    migd = make_migd()
    update(migd, 10)
    granted = request(migd, client=1)
    assert granted == [10]
    update(migd, 10, available=False, time=1.0)
    # Reclaimed: not re-offered, and the assignment is gone.
    assert request(migd, client=2) == []
    assert 10 not in migd.assignments.get(1, set())


def test_fair_share_caps_second_helping():
    migd = make_migd()
    for host in range(10, 16):        # six idle hosts
        update(migd, host)
    hog = request(migd, client=1, n=6)
    assert len(hog) == 6              # alone: take everything
    release(migd, 1, hog[3:])         # give some back; keep 3
    # A second client appears and asks: it may take from the pool.
    other = request(migd, client=2, n=6)
    assert len(other) >= 1
    # The hog asks for more: fair share (pool/2) caps it at its holdings.
    more = request(migd, client=1, n=6)
    assert len(more) <= 1


def test_idle_count_tracks_updates():
    migd = make_migd()
    update(migd, 10)
    update(migd, 11)
    update(migd, 11, available=False, time=1.0)
    assert migd.idle_count() == 1


def test_unknown_op_reports_error():
    migd = make_migd()
    reply = migd._handle({"op": "frobnicate"}, client_host=1)
    assert "error" in reply
