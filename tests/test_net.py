"""Unit tests for the LAN model and RPC layer."""

import pytest

from repro.config import ClusterParams
from repro.net import HostDownError, Lan, NetNode, Packet, Reply, RpcPort, RpcTimeout
from repro.sim import Cpu, Simulator, Sleep, spawn


def make_lan(sim, **overrides):
    params = ClusterParams().clone(**overrides)
    return Lan(sim, params=params)


def make_node(sim, lan, name):
    node = NetNode(sim, name)
    lan.register(node)
    return node


def test_send_delivers_packet_with_latency():
    sim = Simulator()
    lan = make_lan(sim, net_latency=0.001, net_bandwidth=1_000_000)
    a = make_node(sim, lan, "a")
    b = make_node(sim, lan, "b")

    def sender():
        yield from lan.send(Packet(a.address, b.address, "ping", "hi", size=1000))

    def receiver():
        packet = yield b.inbox.get()
        return (sim.now, packet.payload)

    spawn(sim, sender())
    task = spawn(sim, receiver())
    sim.run()
    arrival, payload = task.result
    assert payload == "hi"
    # 1000 bytes / 1e6 B/s + 1 ms latency = 2 ms.
    assert arrival == pytest.approx(0.002)


def test_send_to_down_host_raises():
    sim = Simulator()
    lan = make_lan(sim)
    a = make_node(sim, lan, "a")
    b = make_node(sim, lan, "b")
    b.up = False

    def sender():
        try:
            yield from lan.send(Packet(a.address, b.address, "ping", None, 100))
        except HostDownError:
            return "down"

    task = spawn(sim, sender())
    sim.run()
    assert task.result == "down"


def test_shared_medium_serializes_transfers():
    sim = Simulator()
    lan = make_lan(sim, net_latency=0.0, net_bandwidth=1_000_000)
    a = make_node(sim, lan, "a")
    b = make_node(sim, lan, "b")
    done = {}

    def mover(label):
        yield from lan.transfer(a.address, b.address, 1_000_000)
        done[label] = sim.now

    spawn(sim, mover("x"))
    spawn(sim, mover("y"))
    sim.run()
    assert done["x"] == pytest.approx(1.0)
    assert done["y"] == pytest.approx(2.0)


def test_unshared_medium_overlaps_transfers():
    sim = Simulator()
    lan = make_lan(sim, net_latency=0.0, net_bandwidth=1_000_000,
                   net_shared_medium=False)
    a = make_node(sim, lan, "a")
    b = make_node(sim, lan, "b")
    done = {}

    def mover(label):
        yield from lan.transfer(a.address, b.address, 1_000_000)
        done[label] = sim.now

    spawn(sim, mover("x"))
    spawn(sim, mover("y"))
    sim.run()
    assert done["x"] == pytest.approx(1.0)
    assert done["y"] == pytest.approx(1.0)


def test_broadcast_reaches_all_up_nodes_except_sender():
    sim = Simulator()
    lan = make_lan(sim)
    nodes = [make_node(sim, lan, f"n{i}") for i in range(4)]
    nodes[2].up = False

    def sender():
        yield from lan.broadcast(
            Packet(nodes[0].address, 0, "query", "who-is-idle", 100)
        )

    spawn(sim, sender())
    sim.run_until_idle()
    assert len(nodes[0].inbox) == 0
    assert len(nodes[1].inbox) == 1
    assert len(nodes[2].inbox) == 0  # down
    assert len(nodes[3].inbox) == 1


def test_lan_accounts_traffic():
    sim = Simulator()
    lan = make_lan(sim)
    a = make_node(sim, lan, "a")
    b = make_node(sim, lan, "b")

    def mover():
        yield from lan.transfer(a.address, b.address, 5000)

    spawn(sim, mover())
    sim.run()
    assert lan.bytes_sent == 5000
    assert lan.messages_sent == 1


class _Endpoints:
    """Two hosts with CPUs and RPC ports, for RPC tests."""

    def __init__(self, sim, **overrides):
        self.lan = make_lan(sim, **overrides)
        self.params = self.lan.params
        self.client_node = make_node(sim, self.lan, "client")
        self.server_node = make_node(sim, self.lan, "server")
        self.client_cpu = Cpu(sim, name="client-cpu")
        self.server_cpu = Cpu(sim, name="server-cpu")
        self.client = RpcPort(sim, self.lan, self.client_node, cpu=self.client_cpu)
        self.server = RpcPort(sim, self.lan, self.server_node, cpu=self.server_cpu)


def test_rpc_round_trip():
    sim = Simulator()
    endpoints = _Endpoints(sim)

    def echo(args):
        return args * 2
        yield  # pragma: no cover - makes this a generator

    endpoints.server.register("echo", echo)

    def caller():
        result = yield from endpoints.client.call(
            endpoints.server_node.address, "echo", 21
        )
        return (result, sim.now)

    task = spawn(sim, caller())
    sim.run_until_idle()
    result, elapsed = task.result
    assert result == 42
    # Null RPC should land in the low single-digit milliseconds.
    assert 0.001 < elapsed < 0.01


def test_rpc_handler_can_sleep_and_consume_cpu():
    sim = Simulator()
    endpoints = _Endpoints(sim)

    def slow(args):
        yield Sleep(0.5)
        yield from endpoints.server_cpu.consume(0.1)
        return "done"

    endpoints.server.register("slow", slow)

    def caller():
        result = yield from endpoints.client.call(
            endpoints.server_node.address, "slow", timeout=10.0
        )
        return (result, sim.now)

    task = spawn(sim, caller())
    sim.run_until_idle()
    result, elapsed = task.result
    assert result == "done"
    assert elapsed > 0.6


def test_rpc_unknown_service_raises_at_caller():
    sim = Simulator()
    endpoints = _Endpoints(sim)

    def caller():
        try:
            yield from endpoints.client.call(
                endpoints.server_node.address, "missing"
            )
        except Exception as err:  # noqa: BLE001
            return type(err).__name__

    task = spawn(sim, caller())
    sim.run_until_idle()
    assert task.result == "RpcError"


def test_rpc_remote_exception_propagates():
    sim = Simulator()
    endpoints = _Endpoints(sim)

    def bad(args):
        raise KeyError("nope")
        yield  # pragma: no cover

    endpoints.server.register("bad", bad)

    def caller():
        try:
            yield from endpoints.client.call(endpoints.server_node.address, "bad")
        except KeyError as err:
            return f"caught {err}"

    task = spawn(sim, caller())
    sim.run_until_idle()
    assert task.result == "caught 'nope'"


def test_rpc_to_down_host_times_out():
    sim = Simulator()
    endpoints = _Endpoints(sim, rpc_timeout=0.5, rpc_retries=1)
    endpoints.server_node.up = False

    def caller():
        try:
            yield from endpoints.client.call(endpoints.server_node.address, "echo")
        except RpcTimeout:
            return ("timeout", sim.now)

    task = spawn(sim, caller())
    sim.run_until_idle()
    assert task.result[0] == "timeout"


def test_rpc_reply_wrapper_controls_size():
    sim = Simulator()
    endpoints = _Endpoints(sim, net_latency=0.0, net_bandwidth=1000.0)

    def bulky(args):
        return Reply("data", size=1000)
        yield  # pragma: no cover

    endpoints.server.register("bulky", bulky)

    def caller():
        start = sim.now
        result = yield from endpoints.client.call(
            endpoints.server_node.address, "bulky", size=1, timeout=30.0
        )
        return (result, sim.now - start)

    task = spawn(sim, caller())
    sim.run_until_idle()
    result, elapsed = task.result
    assert result == "data"
    # 1000-byte reply at 1000 B/s dominates: ~1 s.
    assert elapsed > 0.9


def test_rpc_fallback_receives_non_rpc_packets():
    sim = Simulator()
    endpoints = _Endpoints(sim)
    seen = []
    endpoints.server.fallback = lambda packet: seen.append(packet.kind)

    def sender():
        yield from endpoints.lan.send(
            Packet(
                endpoints.client_node.address,
                endpoints.server_node.address,
                "idle-query",
                None,
                64,
            )
        )

    spawn(sim, sender())
    sim.run_until_idle()
    assert seen == ["idle-query"]


def test_rpc_server_counts_calls():
    sim = Simulator()
    endpoints = _Endpoints(sim)

    def noop(args):
        return None
        yield  # pragma: no cover

    endpoints.server.register("noop", noop)

    def caller():
        for _ in range(3):
            yield from endpoints.client.call(endpoints.server_node.address, "noop")

    spawn(sim, caller())
    sim.run_until_idle()
    assert endpoints.client.calls_made == 3
    assert endpoints.server.calls_served == 3


# ----------------------------------------------------------------------
# Exactly-once RPC under adversarial fabrics
# ----------------------------------------------------------------------
class _ScriptedRng:
    """Deterministic fabric RNG: ``random()`` pops scripted draws (then
    repeats the last one forever); ``uniform`` returns the low bound."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        if len(self.values) > 1:
            return self.values.pop(0)
        return self.values[0]

    def uniform(self, low, high):
        return low


def _adversarial_endpoints(sim, rng_values, **link):
    from repro.faults import LinkFabric

    endpoints = _Endpoints(sim)
    fabric = LinkFabric(rng=_ScriptedRng(rng_values))
    fabric.set_link(
        endpoints.client_node.address, endpoints.server_node.address, **link
    )
    endpoints.lan.fabric = fabric
    return endpoints


def test_rpc_exactly_once_under_duplicating_link():
    """A link that duplicates every request must not double-execute a
    non-idempotent handler: the dedup cache absorbs the copies."""
    sim = Simulator()
    endpoints = _adversarial_endpoints(sim, [0.0], duplicate=0.5)
    executed = []

    def bump(args):
        executed.append(args)
        return len(executed)
        yield  # pragma: no cover - makes this a generator

    endpoints.server.register("bump", bump)

    def caller():
        results = []
        for i in range(3):
            results.append((yield from endpoints.client.call(
                endpoints.server_node.address, "bump", i
            )))
        return results

    task = spawn(sim, caller())
    sim.run_until_idle()
    assert task.result == [1, 2, 3]
    assert executed == [0, 1, 2]                      # exactly once each
    assert endpoints.server.duplicates_suppressed == 3
    assert endpoints.server.double_executions == 0


def test_rpc_timeout_none_survives_duplicating_link():
    """Unbounded calls (timeout=None) under a duplicating link: the
    duplicate reply is discarded by the fired-event guard."""
    sim = Simulator()
    endpoints = _adversarial_endpoints(sim, [0.0], duplicate=0.9)

    def echo(args):
        yield Sleep(0.01)
        return args

    endpoints.server.register("echo", echo)

    def caller():
        return (yield from endpoints.client.call(
            endpoints.server_node.address, "echo", "payload", timeout=None
        ))

    task = spawn(sim, caller())
    sim.run_until_idle()
    assert task.result == "payload"
    assert endpoints.server.duplicates_suppressed >= 1
    assert endpoints.server.double_executions == 0


def test_rpc_corrupted_request_dropped_then_retry_succeeds():
    """A corrupted request is checksum-dropped at the server; the
    client's timeout retry (same req_id) lands clean and succeeds."""
    sim = Simulator()
    # First draw corrupts the first request; every later draw is clean.
    endpoints = _adversarial_endpoints(sim, [0.0, 0.9], corrupt=0.5)
    endpoints.params.rpc_timeout = 0.5
    executed = []

    def once(args):
        executed.append(args)
        return "ok"
        yield  # pragma: no cover - makes this a generator

    endpoints.server.register("once", once)

    def caller():
        return (yield from endpoints.client.call(
            endpoints.server_node.address, "once", None
        ))

    task = spawn(sim, caller())
    sim.run_until_idle()
    assert task.result == "ok"
    assert endpoints.server.checksum_failures == 1
    assert len(executed) == 1
    assert endpoints.server.double_executions == 0


def test_rpc_retry_exhaustion_under_corrupting_link_times_out():
    """Every attempt corrupted => every attempt checksum-dropped =>
    the caller exhausts its retries and surfaces RpcTimeout."""
    sim = Simulator()
    endpoints = _adversarial_endpoints(sim, [0.0], corrupt=0.9)
    endpoints.params.rpc_timeout = 0.5

    def never(args):
        return "unreachable"
        yield  # pragma: no cover - makes this a generator

    endpoints.server.register("never", never)

    def caller():
        try:
            yield from endpoints.client.call(
                endpoints.server_node.address, "never", None
            )
        except RpcTimeout:
            return "timed-out"

    task = spawn(sim, caller())
    sim.run_until_idle()
    assert task.result == "timed-out"
    attempts = endpoints.params.rpc_retries + 1
    assert endpoints.server.checksum_failures == attempts
    assert endpoints.server.calls_served == 0


def test_rpc_retry_later_backs_off_and_reraises_after_exhaustion():
    """RetryLaterError is explicit backpressure: each retry re-attempts
    admission (the dedup cache forgets busy refusals), and exhaustion
    re-raises RetryLaterError — never RpcTimeout or HostDownError."""
    from repro.net import RetryLaterError

    sim = Simulator()
    endpoints = _Endpoints(sim)
    admissions = []

    def busy(args):
        admissions.append(sim.now)
        raise RetryLaterError("at capacity")
        yield  # pragma: no cover - makes this a generator

    endpoints.server.register("busy", busy)

    def caller():
        try:
            yield from endpoints.client.call(
                endpoints.server_node.address, "busy", None
            )
        except RetryLaterError:
            return "retry-later"

    task = spawn(sim, caller())
    sim.run_until_idle()
    assert task.result == "retry-later"
    # Every attempt reached the handler (no memoized "busy" replay) and
    # none of them counted as a double execution.
    assert len(admissions) == endpoints.params.rpc_retries + 1
    assert endpoints.server.double_executions == 0
    # The retries were spaced by backoff, not fired back-to-back.
    assert admissions == sorted(admissions)
    assert admissions[1] - admissions[0] >= endpoints.params.rpc_backoff_base


def test_bounded_inbox_overflow_is_counted_backpressure():
    """A full bounded inbox drops the packet and counts it — no
    exception; senders discover the loss by timeout."""
    sim = Simulator()
    lan = make_lan(sim, net_inbox_capacity=2)
    a = make_node(sim, lan, "a")
    b = make_node(sim, lan, "b")

    def sender():
        for i in range(5):
            yield from lan.send(
                Packet(a.address, b.address, "flood", i, size=100)
            )

    spawn(sim, sender())
    sim.run_until_idle()
    assert len(b.inbox) == 2
    assert lan.inbox_overflows == 3
