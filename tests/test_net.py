"""Unit tests for the LAN model and RPC layer."""

import pytest

from repro.config import ClusterParams
from repro.net import HostDownError, Lan, NetNode, Packet, Reply, RpcPort, RpcTimeout
from repro.sim import Cpu, Simulator, Sleep, spawn


def make_lan(sim, **overrides):
    params = ClusterParams().clone(**overrides)
    return Lan(sim, params=params)


def make_node(sim, lan, name):
    node = NetNode(sim, name)
    lan.register(node)
    return node


def test_send_delivers_packet_with_latency():
    sim = Simulator()
    lan = make_lan(sim, net_latency=0.001, net_bandwidth=1_000_000)
    a = make_node(sim, lan, "a")
    b = make_node(sim, lan, "b")

    def sender():
        yield from lan.send(Packet(a.address, b.address, "ping", "hi", size=1000))

    def receiver():
        packet = yield b.inbox.get()
        return (sim.now, packet.payload)

    spawn(sim, sender())
    task = spawn(sim, receiver())
    sim.run()
    arrival, payload = task.result
    assert payload == "hi"
    # 1000 bytes / 1e6 B/s + 1 ms latency = 2 ms.
    assert arrival == pytest.approx(0.002)


def test_send_to_down_host_raises():
    sim = Simulator()
    lan = make_lan(sim)
    a = make_node(sim, lan, "a")
    b = make_node(sim, lan, "b")
    b.up = False

    def sender():
        try:
            yield from lan.send(Packet(a.address, b.address, "ping", None, 100))
        except HostDownError:
            return "down"

    task = spawn(sim, sender())
    sim.run()
    assert task.result == "down"


def test_shared_medium_serializes_transfers():
    sim = Simulator()
    lan = make_lan(sim, net_latency=0.0, net_bandwidth=1_000_000)
    a = make_node(sim, lan, "a")
    b = make_node(sim, lan, "b")
    done = {}

    def mover(label):
        yield from lan.transfer(a.address, b.address, 1_000_000)
        done[label] = sim.now

    spawn(sim, mover("x"))
    spawn(sim, mover("y"))
    sim.run()
    assert done["x"] == pytest.approx(1.0)
    assert done["y"] == pytest.approx(2.0)


def test_unshared_medium_overlaps_transfers():
    sim = Simulator()
    lan = make_lan(sim, net_latency=0.0, net_bandwidth=1_000_000,
                   net_shared_medium=False)
    a = make_node(sim, lan, "a")
    b = make_node(sim, lan, "b")
    done = {}

    def mover(label):
        yield from lan.transfer(a.address, b.address, 1_000_000)
        done[label] = sim.now

    spawn(sim, mover("x"))
    spawn(sim, mover("y"))
    sim.run()
    assert done["x"] == pytest.approx(1.0)
    assert done["y"] == pytest.approx(1.0)


def test_broadcast_reaches_all_up_nodes_except_sender():
    sim = Simulator()
    lan = make_lan(sim)
    nodes = [make_node(sim, lan, f"n{i}") for i in range(4)]
    nodes[2].up = False

    def sender():
        yield from lan.broadcast(
            Packet(nodes[0].address, 0, "query", "who-is-idle", 100)
        )

    spawn(sim, sender())
    sim.run_until_idle()
    assert len(nodes[0].inbox) == 0
    assert len(nodes[1].inbox) == 1
    assert len(nodes[2].inbox) == 0  # down
    assert len(nodes[3].inbox) == 1


def test_lan_accounts_traffic():
    sim = Simulator()
    lan = make_lan(sim)
    a = make_node(sim, lan, "a")
    b = make_node(sim, lan, "b")

    def mover():
        yield from lan.transfer(a.address, b.address, 5000)

    spawn(sim, mover())
    sim.run()
    assert lan.bytes_sent == 5000
    assert lan.messages_sent == 1


class _Endpoints:
    """Two hosts with CPUs and RPC ports, for RPC tests."""

    def __init__(self, sim, **overrides):
        self.lan = make_lan(sim, **overrides)
        self.params = self.lan.params
        self.client_node = make_node(sim, self.lan, "client")
        self.server_node = make_node(sim, self.lan, "server")
        self.client_cpu = Cpu(sim, name="client-cpu")
        self.server_cpu = Cpu(sim, name="server-cpu")
        self.client = RpcPort(sim, self.lan, self.client_node, cpu=self.client_cpu)
        self.server = RpcPort(sim, self.lan, self.server_node, cpu=self.server_cpu)


def test_rpc_round_trip():
    sim = Simulator()
    endpoints = _Endpoints(sim)

    def echo(args):
        return args * 2
        yield  # pragma: no cover - makes this a generator

    endpoints.server.register("echo", echo)

    def caller():
        result = yield from endpoints.client.call(
            endpoints.server_node.address, "echo", 21
        )
        return (result, sim.now)

    task = spawn(sim, caller())
    sim.run_until_idle()
    result, elapsed = task.result
    assert result == 42
    # Null RPC should land in the low single-digit milliseconds.
    assert 0.001 < elapsed < 0.01


def test_rpc_handler_can_sleep_and_consume_cpu():
    sim = Simulator()
    endpoints = _Endpoints(sim)

    def slow(args):
        yield Sleep(0.5)
        yield from endpoints.server_cpu.consume(0.1)
        return "done"

    endpoints.server.register("slow", slow)

    def caller():
        result = yield from endpoints.client.call(
            endpoints.server_node.address, "slow", timeout=10.0
        )
        return (result, sim.now)

    task = spawn(sim, caller())
    sim.run_until_idle()
    result, elapsed = task.result
    assert result == "done"
    assert elapsed > 0.6


def test_rpc_unknown_service_raises_at_caller():
    sim = Simulator()
    endpoints = _Endpoints(sim)

    def caller():
        try:
            yield from endpoints.client.call(
                endpoints.server_node.address, "missing"
            )
        except Exception as err:  # noqa: BLE001
            return type(err).__name__

    task = spawn(sim, caller())
    sim.run_until_idle()
    assert task.result == "RpcError"


def test_rpc_remote_exception_propagates():
    sim = Simulator()
    endpoints = _Endpoints(sim)

    def bad(args):
        raise KeyError("nope")
        yield  # pragma: no cover

    endpoints.server.register("bad", bad)

    def caller():
        try:
            yield from endpoints.client.call(endpoints.server_node.address, "bad")
        except KeyError as err:
            return f"caught {err}"

    task = spawn(sim, caller())
    sim.run_until_idle()
    assert task.result == "caught 'nope'"


def test_rpc_to_down_host_times_out():
    sim = Simulator()
    endpoints = _Endpoints(sim, rpc_timeout=0.5, rpc_retries=1)
    endpoints.server_node.up = False

    def caller():
        try:
            yield from endpoints.client.call(endpoints.server_node.address, "echo")
        except RpcTimeout:
            return ("timeout", sim.now)

    task = spawn(sim, caller())
    sim.run_until_idle()
    assert task.result[0] == "timeout"


def test_rpc_reply_wrapper_controls_size():
    sim = Simulator()
    endpoints = _Endpoints(sim, net_latency=0.0, net_bandwidth=1000.0)

    def bulky(args):
        return Reply("data", size=1000)
        yield  # pragma: no cover

    endpoints.server.register("bulky", bulky)

    def caller():
        start = sim.now
        result = yield from endpoints.client.call(
            endpoints.server_node.address, "bulky", size=1, timeout=30.0
        )
        return (result, sim.now - start)

    task = spawn(sim, caller())
    sim.run_until_idle()
    result, elapsed = task.result
    assert result == "data"
    # 1000-byte reply at 1000 B/s dominates: ~1 s.
    assert elapsed > 0.9


def test_rpc_fallback_receives_non_rpc_packets():
    sim = Simulator()
    endpoints = _Endpoints(sim)
    seen = []
    endpoints.server.fallback = lambda packet: seen.append(packet.kind)

    def sender():
        yield from endpoints.lan.send(
            Packet(
                endpoints.client_node.address,
                endpoints.server_node.address,
                "idle-query",
                None,
                64,
            )
        )

    spawn(sim, sender())
    sim.run_until_idle()
    assert seen == ["idle-query"]


def test_rpc_server_counts_calls():
    sim = Simulator()
    endpoints = _Endpoints(sim)

    def noop(args):
        return None
        yield  # pragma: no cover

    endpoints.server.register("noop", noop)

    def caller():
        for _ in range(3):
            yield from endpoints.client.call(endpoints.server_node.address, "noop")

    spawn(sim, caller())
    sim.run_until_idle()
    assert endpoints.client.calls_made == 3
    assert endpoints.server.calls_served == 3
