"""Tests for the workload models: pmake, simfarm, lifetimes, activity."""

import numpy as np
import pytest

from repro import SpriteCluster
from repro.loadsharing import LoadSharingService
from repro.workloads import (
    ActivityModel,
    Pmake,
    SimFarm,
    SourceTree,
    ZhouLifetimes,
    fit_hyperexponential,
    idle_fraction_by_hour,
)


# ----------------------------------------------------------------------
# Zhou lifetimes
# ----------------------------------------------------------------------
def test_hyperexponential_fit_matches_moments():
    p, short, long_ = fit_hyperexponential(1.5, 19.1, p_short=0.99)
    assert p == pytest.approx(0.99)
    mean = p * short + (1 - p) * long_
    second = 2 * (p * short**2 + (1 - p) * long_**2)
    std = np.sqrt(second - mean**2)
    assert mean == pytest.approx(1.5, rel=0.02)
    assert std == pytest.approx(19.1, rel=0.05)


def test_lifetime_samples_match_target_distribution():
    sampler = ZhouLifetimes(seed=7)
    samples = sampler.sample_many(200_000)
    assert samples.mean() == pytest.approx(1.5, rel=0.1)
    assert samples.std() == pytest.approx(19.1, rel=0.15)
    # Zhou: the vast majority of processes live under a second.
    assert (samples < 1.0).mean() > 0.75


def test_lifetimes_deterministic_by_seed():
    a = ZhouLifetimes(seed=3).sample_many(100)
    b = ZhouLifetimes(seed=3).sample_many(100)
    assert np.array_equal(a, b)


def test_long_running_signal():
    sampler = ZhouLifetimes()
    assert not sampler.is_long_running(0.5)
    assert sampler.is_long_running(60.0)


# ----------------------------------------------------------------------
# Activity model
# ----------------------------------------------------------------------
def test_activity_intervals_ordered_and_bounded():
    model = ActivityModel(seed=1)
    intervals = model.generate_intervals(0, duration=86400.0)
    assert intervals, "a day should include some sessions"
    last_stop = 0.0
    for start, stop in intervals:
        assert start >= last_stop
        assert stop <= 86400.0 + 1e-6
        last_stop = stop


def test_activity_day_busier_than_night():
    model = ActivityModel(seed=2)
    fractions = idle_fraction_by_hour(model, hosts=12, days=5)
    day = fractions[10:17].mean()     # 10:00-17:00
    night = np.concatenate([fractions[:6], fractions[22:]]).mean()
    assert night > day
    # The thesis's bands: roughly 60-80% idle by day, more at night.
    assert 0.5 < day < 0.9
    assert night > 0.7


def test_activity_deterministic_per_host_seed():
    model = ActivityModel(seed=5)
    assert model.generate_intervals(3, 3600.0) == model.generate_intervals(3, 3600.0)
    assert model.generate_intervals(3, 3600.0) != model.generate_intervals(4, 3600.0)


# ----------------------------------------------------------------------
# Source tree / pmake
# ----------------------------------------------------------------------
def test_source_tree_graph_shape():
    tree = SourceTree(files=5)
    assert len(tree.targets) == 6          # 5 compiles + 1 link
    ready = tree.ready_after(set())
    assert sorted(ready) == [f"compile:f{i}" for i in range(5)]
    done = set(ready)
    assert tree.ready_after(done) == ["link"]


def make_sharing_cluster(n_hosts, **kwargs):
    cluster = SpriteCluster(workstations=n_hosts, start_daemons=True, **kwargs)
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.standard_images()
    cluster.run(until=45.0)  # hosts become available
    return cluster, service


def run_pmake(cluster, service, tree, jobs):
    tree.populate(cluster)
    host = cluster.hosts[0]
    client = service.mig_client(host) if jobs > 1 else None
    pmake = Pmake(tree, client=client, max_jobs=jobs)

    def coordinator(proc):
        result = yield from pmake.run(proc)
        return result

    pcb, _ = host.spawn_process(coordinator, name="pmake")
    return cluster.run_until_complete(pcb.task)


def test_pmake_sequential_builds_everything():
    cluster, service = make_sharing_cluster(2)
    tree = SourceTree(files=4, compile_cpu=2.0, link_cpu=1.0)
    result = run_pmake(cluster, service, tree, jobs=1)
    assert result.targets_built == 5
    assert result.remote_jobs == 0
    # 4 compiles + 1 link of CPU, plus I/O overheads.
    assert result.elapsed > 9.0


def test_pmake_parallel_speedup():
    tree_kwargs = dict(files=8, compile_cpu=4.0, link_cpu=2.0)
    cluster_seq, service_seq = make_sharing_cluster(5)
    seq = run_pmake(cluster_seq, service_seq, SourceTree(**tree_kwargs), jobs=1)
    cluster_par, service_par = make_sharing_cluster(5)
    par = run_pmake(cluster_par, service_par, SourceTree(**tree_kwargs), jobs=4)
    assert par.targets_built == 9
    assert par.remote_jobs > 0
    speedup = seq.elapsed / par.elapsed
    assert speedup > 2.0, f"speedup only {speedup:.2f}"
    # Amdahl: the sequential link bounds it below the slot count.
    assert speedup < 4.5


def test_pmake_generates_server_name_lookups():
    cluster, service = make_sharing_cluster(3)
    tree = SourceTree(files=4, compile_cpu=1.0)
    lookups_before = cluster.file_server.lookups
    run_pmake(cluster, service, tree, jobs=3)
    # Each job opens sources, headers, image, output: lookups pile up.
    assert cluster.file_server.lookups - lookups_before > 20


# ----------------------------------------------------------------------
# Simulation farm
# ----------------------------------------------------------------------
def test_simfarm_utilization_exceeds_serial():
    cluster, service = make_sharing_cluster(6)
    host = cluster.hosts[0]
    client = service.mig_client(host)
    farm = SimFarm(client, jobs=10, cpu_seconds=20.0)

    def coordinator(proc):
        result = yield from farm.run(proc)
        return result

    pcb, _ = host.spawn_process(coordinator, name="farm")
    result = cluster.run_until_complete(pcb.task)
    assert result.jobs == 10
    assert result.remote_jobs >= 4
    # With ~6 hosts the farm sustains several CPUs' worth of work.
    assert result.effective_utilization > 250.0


def test_simfarm_local_only_baseline():
    cluster = SpriteCluster(workstations=1, start_daemons=False)
    host = cluster.hosts[0]
    farm = SimFarm(None, jobs=4, cpu_seconds=5.0)

    def coordinator(proc):
        result = yield from farm.run(proc)
        return result

    pcb, _ = host.spawn_process(coordinator, name="farm")
    result = cluster.run_until_complete(pcb.task)
    assert result.jobs == 4
    assert result.remote_jobs == 0
    # One CPU: effective utilization is pinned near 100%.
    assert result.effective_utilization < 120.0


def test_out_of_date_closure():
    tree = SourceTree(files=4)
    stale = tree.out_of_date([f"{tree.root}/f2.c"])
    assert stale == {"compile:f2", "link"}
    # A shared header dirties every compile.
    stale = tree.out_of_date([f"{tree.root}/h0.h"])
    assert stale == set(tree.targets)
    # Nothing changed: nothing to do.
    assert tree.out_of_date([]) == set()


def test_incremental_rebuild_builds_only_stale_targets():
    cluster, service = make_sharing_cluster(2)
    tree = SourceTree(files=6, compile_cpu=2.0, link_cpu=1.0)
    tree.populate(cluster)
    # Products of the previous full build are on the server.
    for i in range(6):
        cluster.add_file(f"{tree.root}/f{i}.o", size=tree.obj_bytes)
    pmake = Pmake(
        tree, client=None, max_jobs=1,
        changed_files=[f"{tree.root}/f3.c"],
    )

    def coordinator(proc):
        result = yield from pmake.run(proc)
        return result

    pcb, _ = cluster.hosts[0].spawn_process(coordinator, name="pmake")
    result = cluster.run_until_complete(pcb.task)
    # Just f3's compile and the link: 2 targets, ~3 CPU seconds.
    assert result.targets_built == 2
    assert result.elapsed < 8.0


def test_library_archive_tree_shape():
    tree = SourceTree(files=6, libs=2)
    assert len(tree.targets) == 6 + 2 + 1     # compiles + archives + link
    ready = set(tree.ready_after(set()))
    assert ready == {f"compile:f{i}" for i in range(6)}
    done = set(ready)
    assert set(tree.ready_after(done)) == {"archive:lib0", "archive:lib1"}
    done |= {"archive:lib0", "archive:lib1"}
    assert tree.ready_after(done) == ["link"]


def test_library_tree_out_of_date_goes_through_archive():
    tree = SourceTree(files=4, libs=2)
    stale = tree.out_of_date([f"{tree.root}/f0.c"])
    # f0 is in lib0 (round-robin by index): compile -> archive -> link.
    assert stale == {"compile:f0", "archive:lib0", "link"}


def test_library_tree_builds_end_to_end():
    cluster, service = make_sharing_cluster(4)
    tree = SourceTree(files=6, libs=2, compile_cpu=2.0, link_cpu=1.0)
    tree.populate(cluster)
    result = run_pmake(cluster, service, tree, jobs=3)
    assert result.targets_built == 9
    assert result.remote_jobs > 0


def test_too_many_libs_rejected():
    with pytest.raises(ValueError):
        SourceTree(files=2, libs=3)
