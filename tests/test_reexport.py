"""Tests for re-exporting evicted processes to fresh idle hosts."""

from repro import SpriteCluster
from repro.loadsharing import LoadSharingService, ReExporter
from repro.sim import Sleep, spawn


def build(n=4):
    cluster = SpriteCluster(workstations=n, start_daemons=True)
    service = LoadSharingService(cluster, architecture="centralized")
    reexporter = ReExporter(cluster, service)
    cluster.standard_images()
    cluster.run(until=45.0)
    return cluster, service, reexporter


def test_evicted_process_lands_on_third_host():
    cluster, service, reexporter = build(4)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(60.0)
        return proc.pcb.current

    pcb, _ = a.spawn_process(job, name="job")
    selector = service.selector_for(a)

    def driver():
        granted = yield from selector.request(1)
        assert granted
        yield from cluster.managers[a.address].migrate(pcb, granted[0])
        yield Sleep(5.0)
        # Owner of the granted host returns: eviction, then re-export.
        cluster.host_by_address(granted[0]).user_input()
        return granted[0]

    driver_task = spawn(cluster.sim, driver(), name="driver")
    final = cluster.run_until_complete(pcb.task)
    first_target = driver_task.result
    assert reexporter.reexported == 1
    # It finished neither at home nor on the reclaimed host.
    assert final not in (a.address, first_target)
    reasons = [r.reason for r in cluster.migration_records() if not r.refused]
    assert reasons.count("eviction") == 1
    assert reasons.count("re-export") == 1


def test_reexport_stays_home_when_cluster_busy():
    cluster, service, reexporter = build(2)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(30.0)
        return proc.pcb.current

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.5)
        yield from cluster.managers[a.address].migrate(pcb, b.address)
        yield Sleep(3.0)
        b.user_input()   # only other host reclaimed: nowhere to go

    spawn(cluster.sim, driver(), name="driver", daemon=True)
    final = cluster.run_until_complete(pcb.task)
    assert final == a.address       # finished at home
    assert reexporter.reexported == 0


def test_reexport_excludes_the_reclaimed_host():
    cluster, service, reexporter = build(3)
    a = cluster.hosts[0]

    def job(proc):
        yield from proc.compute(40.0)
        return proc.pcb.current

    pcb, _ = a.spawn_process(job, name="job")
    selector = service.selector_for(a)
    reclaimed = []

    def driver():
        granted = yield from selector.request(1)
        yield from cluster.managers[a.address].migrate(pcb, granted[0])
        yield Sleep(3.0)
        reclaimed.append(granted[0])
        cluster.host_by_address(granted[0]).user_input()

    spawn(cluster.sim, driver(), name="driver", daemon=True)
    final = cluster.run_until_complete(pcb.task)
    if reexporter.reexported:
        assert final != reclaimed[0]
