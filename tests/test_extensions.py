"""Tests for the extension features: all_of, histograms, assignment
caching, and environment variables."""

import pytest

from repro import SpriteCluster
from repro.loadsharing import CachingSelector, LoadSharingService
from repro.metrics import LatencyHistogram
from repro.sim import (
    SimEvent,
    Simulator,
    Sleep,
    all_of,
    run_until_complete,
    spawn,
)


# ----------------------------------------------------------------------
# all_of
# ----------------------------------------------------------------------
def test_all_of_gathers_results_in_order():
    sim = Simulator()
    e1, e2 = SimEvent(sim), SimEvent(sim)

    def waiter():
        results = yield all_of(e1.wait(), e2.wait(), Sleep(1.0))
        return (results, sim.now)

    task = spawn(sim, waiter())
    sim.schedule(3.0, e1.trigger, "one")
    sim.schedule(2.0, e2.trigger, "two")
    sim.run()
    results, when = task.result
    assert results == ["one", "two", None]
    assert when == 3.0      # waits for the slowest


def test_all_of_fail_fast():
    sim = Simulator()
    event = SimEvent(sim)

    def waiter():
        try:
            yield all_of(event.wait(), Sleep(100.0))
        except RuntimeError as err:
            return (str(err), sim.now)

    task = spawn(sim, waiter())
    sim.schedule(1.0, event.fail, RuntimeError("boom"))
    sim.run(until=5.0)
    message, when = task.result
    assert message == "boom"
    assert when == 1.0      # the 100s sleep was cancelled


def test_all_of_needs_effects():
    with pytest.raises(ValueError):
        all_of()


def test_all_of_join_tasks():
    sim = Simulator()

    def worker(duration, value):
        yield Sleep(duration)
        return value

    tasks = [spawn(sim, worker(float(i + 1), i * 10)) for i in range(3)]

    def boss():
        results = yield all_of(*(t.join() for t in tasks))
        return results

    boss_task = spawn(sim, boss())
    sim.run()
    assert boss_task.result == [0, 10, 20]


# ----------------------------------------------------------------------
# LatencyHistogram
# ----------------------------------------------------------------------
def test_histogram_summary_shape():
    hist = LatencyHistogram()
    hist.extend([0.001] * 90 + [0.1] * 9 + [2.0])
    summary = hist.summary()
    assert summary["count"] == 100
    assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]
    assert summary["max"] == 2.0
    assert summary["p50"] == pytest.approx(0.001, rel=0.6)


def test_histogram_percentile_bounds():
    hist = LatencyHistogram()
    hist.add(0.5)
    assert hist.percentile(100) == 0.5
    with pytest.raises(ValueError):
        hist.percentile(0)
    with pytest.raises(ValueError):
        hist.add(-1.0)


def test_histogram_merge():
    a, b = LatencyHistogram(), LatencyHistogram()
    a.extend([0.01, 0.02])
    b.extend([1.0])
    a.merge(b)
    assert a.count == 3
    assert a.max_value == 1.0


def test_histogram_merge_requires_matching_buckets():
    a = LatencyHistogram()
    b = LatencyHistogram(factor=2.0)
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_empty():
    hist = LatencyHistogram()
    assert hist.mean == 0.0
    assert hist.percentile(95) == 0.0


# ----------------------------------------------------------------------
# CachingSelector (future-work extension)
# ----------------------------------------------------------------------
def make_cached_cluster():
    cluster = SpriteCluster(workstations=5, start_daemons=True)
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.run(until=45.0)
    inner = service.selector_for(cluster.hosts[0])
    return cluster, service, CachingSelector(inner, ttl=20.0)


def test_cached_release_and_rerequest_skips_server():
    cluster, service, cached = make_cached_cluster()

    def scenario():
        first = yield from cached.request(2)
        yield from cached.release(first)
        requests_before = service.migd.requests_served
        second = yield from cached.request(2)
        return first, second, service.migd.requests_served - requests_before

    first, second, server_requests = run_until_complete(
        cluster.sim, scenario(), name="scenario"
    )
    assert sorted(second) == sorted(first)   # reused from the cache
    assert server_requests == 0              # no server round trip
    assert cached.cache_hits == 2


def test_cache_expiry_returns_hosts_to_facility():
    cluster, service, cached = make_cached_cluster()

    def scenario():
        granted = yield from cached.request(2)
        yield from cached.release(granted)
        yield Sleep(25.0)                    # past the 20s TTL
        # The next request expires the cache, releasing to the server,
        # then asks the server fresh.
        again = yield from cached.request(2)
        return granted, again

    granted, again = run_until_complete(cluster.sim, scenario(), name="s")
    assert len(again) == 2
    # The facility has them all accounted (no leak): release and re-grant
    # works for a third party too.
    other = service.selector_for(cluster.hosts[1])

    def third_party():
        yield from cached.flush()
        return (yield from other.request(4))

    got = run_until_complete(cluster.sim, third_party(), name="tp")
    assert len(got) >= 2


def test_flush_empties_cache():
    cluster, service, cached = make_cached_cluster()

    def scenario():
        granted = yield from cached.request(2)
        yield from cached.release(granted)
        yield from cached.flush()
        requests_before = service.migd.requests_served
        again = yield from cached.request(1)
        return service.migd.requests_served - requests_before, again

    server_requests, again = run_until_complete(cluster.sim, scenario(), name="s")
    assert server_requests == 1              # cache empty: real request
    assert len(again) == 1


# ----------------------------------------------------------------------
# Environment variables travel with the PCB
# ----------------------------------------------------------------------
def test_env_inherited_and_survives_migration():
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def child(proc):
        yield from proc.compute(2.0)
        yield from proc.exit(0 if proc.pcb.env.get("LANG") == "C" else 1)

    def parent(proc):
        proc.pcb.env["LANG"] = "C"
        yield from proc.fork(child, name="kid")
        status = yield from proc.wait()
        return status.code

    pcb, _ = a.spawn_process(parent, name="parent")

    def driver():
        yield Sleep(0.5)
        kids = [p for p in a.kernel.resident_pcbs() if p.name == "kid"]
        if kids:
            yield from cluster.managers[a.address].migrate(kids[0], b.address)

    spawn(cluster.sim, driver(), name="driver")
    assert cluster.run_until_complete(pcb.task) == 0
