"""Shared fixtures: a miniature cluster of FS clients and servers.

Kernel-free harness used by the file-system and network tests; the
kernel tests build full hosts via repro.cluster instead.
"""

from __future__ import annotations

from typing import Generator, List

from repro.config import ClusterParams
from repro.fs import FileServer, FsClient, PdevRegistry, PrefixTable
from repro.net import Lan, NetNode, RpcPort
from repro.sim import Cpu, Simulator, run_until_complete


class FsHost:
    """A bare host: node + cpu + rpc (+ optional fs roles)."""

    def __init__(self, sim: Simulator, lan: Lan, name: str):
        self.sim = sim
        self.lan = lan
        self.name = name
        self.node = NetNode(sim, name)
        lan.register(self.node)
        self.cpu = Cpu(sim, quantum=lan.params.cpu_quantum, name=f"{name}-cpu")
        self.rpc = RpcPort(sim, lan, self.node, cpu=self.cpu)
        self.fs: FsClient | None = None
        self.server: FileServer | None = None
        self.pdevs: PdevRegistry | None = None

    @property
    def address(self) -> int:
        return self.node.address


class MiniCluster:
    """One file server plus N client hosts on a LAN."""

    def __init__(self, clients: int = 2, seed: int = 0, **param_overrides):
        self.params = ClusterParams(seed=seed).clone(**param_overrides)
        self.sim = Simulator()
        self.lan = Lan(self.sim, params=self.params)
        self.server_host = FsHost(self.sim, self.lan, "server")
        self.server = FileServer(
            self.sim,
            self.lan,
            self.server_host.node,
            self.server_host.rpc,
            self.server_host.cpu,
            params=self.params,
        )
        self.server_host.server = self.server
        self.prefixes = PrefixTable()
        self.prefixes.add("/", self.server_host.address)
        self.clients: List[FsHost] = []
        for i in range(clients):
            host = FsHost(self.sim, self.lan, f"client{i}")
            host.fs = FsClient(
                self.sim,
                self.lan,
                host.node,
                host.rpc,
                host.cpu,
                self.prefixes,
                params=self.params,
            )
            host.pdevs = PdevRegistry(self.sim, host.rpc, host.cpu, self.params)
            self.clients.append(host)

    def run(self, coro: Generator, name: str = "test"):
        """Drive one coroutine to completion and return its result."""
        return run_until_complete(self.sim, coro, name=name)
