"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator, SimulationDeadlock, SimEvent, Sleep, spawn


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_cancelled_event_is_skipped():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, fired.append, "y")
    handle.cancel()
    sim.run()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.5, lambda: None)


def test_run_until_stops_early():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.schedule_at(5.0, fired.append, "later"))
    sim.run()
    assert fired == ["later"]
    assert sim.now == 5.0


def test_call_soon_runs_after_pending_same_time_events():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "first")

    def at_one():
        sim.call_soon(order.append, "soon")

    sim.schedule(1.0, at_one)
    sim.schedule(1.0, order.append, "second")
    sim.run()
    assert order == ["first", "second", "soon"]


def test_deadlock_detection():
    sim = Simulator()

    def stuck(sim):
        yield SimEvent(sim, "never").wait()

    spawn(sim, stuck(sim), name="stuck")
    with pytest.raises(SimulationDeadlock):
        sim.run()


def test_run_until_tolerates_blocked_tasks():
    sim = Simulator()

    def stuck(sim):
        yield SimEvent(sim, "never").wait()

    spawn(sim, stuck(sim), name="stuck")
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_pending_events_counts_uncancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    gone = sim.schedule(2.0, lambda: None)
    gone.cancel()
    assert sim.pending_events == 1
    assert keep is not None


def test_run_is_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(RuntimeError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_sleep_zero_allowed():
    sim = Simulator()
    done = []

    def napper():
        yield Sleep(0.0)
        done.append(sim.now)

    spawn(sim, napper())
    sim.run()
    assert done == [0.0]


def test_detached_task_failure_surfaces_in_run():
    sim = Simulator()

    def bomb():
        yield Sleep(1.0)
        raise ValueError("boom")

    spawn(sim, bomb(), name="bomb")
    with pytest.raises(ValueError, match="boom"):
        sim.run()


# ----------------------------------------------------------------------
# Fast-path internals: ready queue, defer, schedule_many, compaction,
# O(1) pending_events accounting.
# ----------------------------------------------------------------------
def test_pending_events_counter_matches_slow_recount():
    sim = Simulator()
    handles = []
    for i in range(20):
        handles.append(sim.schedule(1.0 + i, lambda: None))
    for i in range(10):
        handles.append(sim.call_soon(lambda: None))
    sim.defer(lambda: None)
    assert sim.pending_events == 31 == sim._pending_events_slow()
    for handle in handles[::3]:
        handle.cancel()
    assert sim.pending_events == sim._pending_events_slow()
    sim.run(until=5.0)
    assert sim.pending_events == sim._pending_events_slow()
    sim.run()
    assert sim.pending_events == 0 == sim._pending_events_slow()


def test_defer_keeps_fifo_order_with_call_soon_and_schedule_zero():
    sim = Simulator()
    order = []
    sim.call_soon(order.append, "a")
    sim.defer(order.append, "b")
    sim.schedule(0.0, order.append, "c")
    sim.defer(order.append, "d")
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_ready_events_interleave_with_same_time_heap_events():
    # A zero-delay event scheduled *before* a timed event that fires at
    # the same instant must still respect global FIFO (seq) order.
    sim = Simulator()
    order = []

    def at_two():
        sim.schedule(1.0, order.append, "heap")      # fires at t=3
        sim.schedule(1.0, spill)                      # fires at t=3

    def spill():
        sim.call_soon(order.append, "ready")          # also t=3, later seq

    sim.schedule(2.0, at_two)
    sim.run()
    assert order == ["heap", "ready"]
    assert sim.now == 3.0


def test_schedule_many_zero_delay_preserves_order():
    sim = Simulator()
    order = []
    sim.call_soon(order.append, "before")
    count = sim.schedule_many(0.0, [(order.append, (i,)) for i in range(5)])
    sim.call_soon(order.append, "after")
    assert count == 5
    sim.run()
    assert order == ["before", 0, 1, 2, 3, 4, "after"]


def test_schedule_many_timed_matches_individual_schedules():
    sim_a, sim_b = Simulator(), Simulator()
    order_a, order_b = [], []
    sim_a.schedule(2.0, order_a.append, "x")
    sim_a.schedule_many(1.0, [(order_a.append, (i,)) for i in range(3)])
    sim_b.schedule(2.0, order_b.append, "x")
    for i in range(3):
        sim_b.schedule(1.0, order_b.append, i)
    assert sim_a.run() == sim_b.run()
    assert order_a == order_b == [0, 1, 2, "x"]


def test_schedule_many_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule_many(-1.0, [(print, ())])


def test_cancel_call_soon_handle():
    sim = Simulator()
    fired = []
    handle = sim.call_soon(fired.append, "x")
    sim.call_soon(fired.append, "y")
    handle.cancel()
    sim.run()
    assert fired == ["y"]
    assert sim.pending_events == 0 == sim._pending_events_slow()


def test_events_fired_counts_dispatches_not_cancellations():
    sim = Simulator()
    for i in range(5):
        sim.schedule(1.0 + i, lambda: None)
    sim.schedule(9.0, lambda: None).cancel()
    sim.defer(lambda: None)
    sim.run()
    assert sim.events_fired == 6


def test_timeout_churn_keeps_heap_bounded():
    # The E10 pattern that used to grow the heap without bound: many
    # long timeouts scheduled and cancelled almost immediately.
    sim = Simulator()
    fired = []
    churn = 10_000

    def tick(i):
        handle = sim.schedule(1000.0, fired.append, i)   # the "timeout"
        handle.cancel()                                  # ...never needed
        if i + 1 < churn:
            sim.schedule(0.001, tick, i + 1)

    sim.schedule(0.001, tick, 0)
    sim.run()
    assert fired == []
    assert sim.heap_compactions > 0
    # Without compaction 10k corpses would sit in the heap; with it the
    # heap never holds more than a small constant of live entries.
    assert len(sim._heap) < 200
    assert sim.pending_events == 0 == sim._pending_events_slow()


def test_cancelled_closure_is_not_pinned_by_heap_corpse():
    import gc
    import weakref

    class Canary:
        pass

    sim = Simulator()
    canary = Canary()
    ref = weakref.ref(canary)
    handle = sim.schedule(1000.0, lambda obj: None, canary)
    handle.cancel()
    del canary
    gc.collect()
    # The corpse may still sit in the heap (handle is alive), but cancel
    # dropped fn/args so the payload is collectable immediately.
    assert ref() is None
    assert handle.cancelled


def test_run_until_pops_each_live_event_once():
    # Regression for the old peek-then-step double pop: count real heap
    # pops during a bounded run.
    import heapq as _heapq

    from repro.sim import engine as engine_mod

    sim = Simulator()
    for i in range(100):
        sim.schedule(1.0 + i, lambda: None)
    pops = [0]
    original = _heapq.heappop

    def counting_pop(heap):
        pops[0] += 1
        return original(heap)

    engine_mod.heapq.heappop = counting_pop
    try:
        sim.run(until=50.5)
        sim.run()
    finally:
        engine_mod.heapq.heappop = original
    assert sim.events_fired == 100
    assert pops[0] == 100


def test_late_cancel_after_fire_does_not_corrupt_accounting():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, handle.cancel)        # cancel after it already ran
    sim.schedule(3.0, fired.append, "y")
    sim.run()
    assert fired == ["x", "y"]
    assert sim.pending_events == 0 == sim._pending_events_slow()
