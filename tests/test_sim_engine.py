"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator, SimulationDeadlock, SimEvent, Sleep, spawn


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_cancelled_event_is_skipped():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, fired.append, "y")
    handle.cancel()
    sim.run()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.5, lambda: None)


def test_run_until_stops_early():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.schedule_at(5.0, fired.append, "later"))
    sim.run()
    assert fired == ["later"]
    assert sim.now == 5.0


def test_call_soon_runs_after_pending_same_time_events():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "first")

    def at_one():
        sim.call_soon(order.append, "soon")

    sim.schedule(1.0, at_one)
    sim.schedule(1.0, order.append, "second")
    sim.run()
    assert order == ["first", "second", "soon"]


def test_deadlock_detection():
    sim = Simulator()

    def stuck(sim):
        yield SimEvent(sim, "never").wait()

    spawn(sim, stuck(sim), name="stuck")
    with pytest.raises(SimulationDeadlock):
        sim.run()


def test_run_until_tolerates_blocked_tasks():
    sim = Simulator()

    def stuck(sim):
        yield SimEvent(sim, "never").wait()

    spawn(sim, stuck(sim), name="stuck")
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_pending_events_counts_uncancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    gone = sim.schedule(2.0, lambda: None)
    gone.cancel()
    assert sim.pending_events == 1
    assert keep is not None


def test_run_is_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(RuntimeError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_sleep_zero_allowed():
    sim = Simulator()
    done = []

    def napper():
        yield Sleep(0.0)
        done.append(sim.now)

    spawn(sim, napper())
    sim.run()
    assert done == [0.0]


def test_detached_task_failure_surfaces_in_run():
    sim = Simulator()

    def bomb():
        yield Sleep(1.0)
        raise ValueError("boom")

    spawn(sim, bomb(), name="bomb")
    with pytest.raises(ValueError, match="boom"):
        sim.run()
