"""Unit tests for tracing, metrics rendering, load averages, and
assorted edge cases across the stack."""

import pytest

from repro import SpriteCluster
from repro.config import ClusterParams
from repro.fs import AccessError, BadStream, OpenMode
from repro.kernel import LoadAverage
from repro.metrics import Series, Table
from repro.sim import (
    Cpu,
    Simulator,
    Sleep,
    TraceRecord,
    Tracer,
    run_until_complete,
    spawn,
)

from .helpers import MiniCluster


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
def test_tracer_disabled_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(1.0, "x", "event", foo=1)
    assert len(tracer) == 0


def test_tracer_filters_by_kind():
    tracer = Tracer(enabled=True, kinds=["keep"])
    tracer.emit(1.0, "x", "keep", n=1)
    tracer.emit(2.0, "x", "drop", n=2)
    assert len(tracer) == 1
    assert tracer.of_kind("keep")[0].detail == {"n": 1}


def test_tracer_sink_called_per_record():
    seen = []
    tracer = Tracer(enabled=True)
    tracer.sink = seen.append
    tracer.emit(1.0, "a", "k")
    tracer.emit(2.0, "b", "k")
    assert [r.source for r in seen] == ["a", "b"]


def test_tracer_between_and_clear():
    tracer = Tracer(enabled=True)
    for t in (1.0, 2.0, 3.0):
        tracer.emit(t, "s", "k")
    assert len(list(tracer.between(1.5, 3.0))) == 2
    tracer.clear()
    assert len(tracer) == 0


def test_trace_record_str_is_one_line():
    record = TraceRecord(1.25, "kernel:ws0", "migrated", {"pid": 7})
    text = str(record)
    assert "migrated" in text and "pid=7" in text and "\n" not in text


def test_cluster_tracer_captures_migration_events():
    cluster = SpriteCluster(workstations=2, start_daemons=False, trace=True)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(2.0)

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.5)
        yield from cluster.managers[a.address].migrate(pcb, b.address)

    spawn(cluster.sim, driver(), name="driver")
    cluster.run_until_complete(pcb.task)
    kinds = {record.kind for record in cluster.tracer.records}
    assert "migrated" in kinds
    assert "installed" in kinds


# ----------------------------------------------------------------------
# Series rendering
# ----------------------------------------------------------------------
def test_series_renders_curves_sorted_by_x():
    series = Series(title="s", x_label="x", y_label="y")
    series.add_point("a", 2.0, 20.0)
    series.add_point("a", 1.0, 10.0)
    rendered = series.render()
    assert rendered.index("10") < rendered.index("20")
    assert "[a]" in rendered


def test_series_empty_renders_placeholder():
    series = Series(title="s", x_label="x", y_label="y")
    assert "(no data)" in series.render()


def test_series_zero_values_no_bar():
    series = Series(title="s", x_label="x", y_label="y")
    series.add_point("a", 1.0, 0.0)
    series.add_point("a", 2.0, 5.0)
    lines = series.render().splitlines()
    zero_line = next(line for line in lines if "1" in line and "0" in line)
    assert "#" not in zero_line


def test_table_show_prints(capsys):
    table = Table(title="t", columns=["a"])
    table.add_row(1)
    table.show()
    assert "== t ==" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Load average
# ----------------------------------------------------------------------
def test_loadavg_decays_toward_runnable_count():
    sim = Simulator()
    cpu = Cpu(sim)
    load = LoadAverage(sim, cpu, ClusterParams(), start_daemon=False)
    cpu.runnable = 2
    for _ in range(600):
        load.sample()
    assert load.value == pytest.approx(2.0, abs=0.05)
    cpu.runnable = 0
    for _ in range(600):
        load.sample()
    assert load.value < 0.05


def test_loadavg_bias_decays():
    sim = Simulator()
    cpu = Cpu(sim)
    load = LoadAverage(sim, cpu, ClusterParams(), start_daemon=False)
    load.anticipate_arrivals(2)
    assert load.effective == pytest.approx(2.0)
    for _ in range(600):
        load.sample()
    assert load.bias < 0.01


# ----------------------------------------------------------------------
# RPC retry behaviour
# ----------------------------------------------------------------------
def test_rpc_retry_succeeds_when_host_recovers():
    from repro.net import Lan, NetNode, RpcPort
    from repro.sim import Cpu as SimCpu

    sim = Simulator()
    params = ClusterParams().clone(rpc_timeout=0.5, rpc_retries=2)
    lan = Lan(sim, params=params)
    a, b = NetNode(sim, "a"), NetNode(sim, "b")
    lan.register(a)
    lan.register(b)
    port_a = RpcPort(sim, lan, a, cpu=SimCpu(sim))
    port_b = RpcPort(sim, lan, b, cpu=SimCpu(sim))

    def pong(args):
        return "pong"
        yield  # pragma: no cover

    port_b.register("ping", pong)
    b.up = False

    def recover():
        yield Sleep(0.2)
        b.up = True

    def caller():
        result = yield from port_a.call(b.address, "ping")
        return result

    spawn(sim, recover(), name="recover")
    result = run_until_complete(sim, caller(), name="caller")
    assert result == "pong"


# ----------------------------------------------------------------------
# FS guard rails
# ----------------------------------------------------------------------
def test_write_to_readonly_stream_rejected():
    cluster = MiniCluster(clients=1)
    cluster.server.add_file("/ro", size=100)
    fs = cluster.clients[0].fs

    def scenario():
        stream = yield from fs.open("/ro", OpenMode.READ)
        with pytest.raises(AccessError):
            yield from fs.write(stream, 10)
        yield from fs.close(stream)
        return "guarded"

    assert cluster.run(scenario()) == "guarded"


def test_read_from_writeonly_stream_rejected():
    cluster = MiniCluster(clients=1)
    fs = cluster.clients[0].fs

    def scenario():
        stream = yield from fs.open("/wo", OpenMode.WRITE | OpenMode.CREATE)
        with pytest.raises(AccessError):
            yield from fs.read(stream, 10)
        yield from fs.close(stream)
        return "guarded"

    assert cluster.run(scenario()) == "guarded"


def test_double_close_rejected():
    cluster = MiniCluster(clients=1)
    cluster.server.add_file("/f", size=1)
    fs = cluster.clients[0].fs

    def scenario():
        stream = yield from fs.open("/f", OpenMode.READ)
        yield from fs.close(stream)
        with pytest.raises(BadStream):
            yield from fs.close(stream)
        return "guarded"

    assert cluster.run(scenario()) == "guarded"


def test_fork_shared_stream_closes_once():
    """Refcounted streams: the server sees one close for two holders."""
    cluster = MiniCluster(clients=1)
    cluster.server.add_file("/f", size=100)
    fs = cluster.clients[0].fs

    def scenario():
        stream = yield from fs.open("/f", OpenMode.READ)
        stream.refcount += 1          # as fork does
        yield from fs.close(stream)   # first holder: refcount drops
        assert not stream.closed
        yield from fs.close(stream)   # second holder: real close
        assert stream.closed
        return cluster.server.file("/f").open_count()

    assert cluster.run(scenario()) == 0


# ----------------------------------------------------------------------
# Kernel edge cases
# ----------------------------------------------------------------------
def test_exec_missing_image_kills_process_with_error():
    from repro.fs import FileNotFound

    cluster = SpriteCluster(workstations=1, start_daemons=False)

    def target(proc):
        return 0
        yield  # pragma: no cover

    def job(proc):
        try:
            yield from proc.exec(target, image_path="/bin/missing")
        except FileNotFound:
            return "no-image"

    assert cluster.run_process(cluster.hosts[0], job) == "no-image"


def test_kill_unknown_pid_raises():
    from repro.kernel import NoSuchProcess

    cluster = SpriteCluster(workstations=2, start_daemons=False)
    bogus = cluster.hosts[1].address * 1_000_000 + 999

    def job(proc):
        try:
            yield from proc.kill(bogus)
        except NoSuchProcess:
            return "esrch"

    assert cluster.run_process(cluster.hosts[0], job) == "esrch"


def test_getrusage_counts_migrations():
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(2.0)
        usage = yield from proc.getrusage()
        return usage

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.5)
        yield from cluster.managers[a.address].migrate(pcb, b.address)

    spawn(cluster.sim, driver(), name="driver")
    usage = cluster.run_until_complete(pcb.task)
    assert usage["migrations"] == 0 or usage["migrations"] == 1
    assert usage["cpu_time"] > 0
