"""Critical-path attribution, engine profiler, and sweep metrics
merging (the `repro.obs.critpath` / `.profile` layer plus the
`forked_map_metrics` pipe)."""

import pytest

from repro import SpriteCluster
from repro.cli import _CaptureClusters, _trace_builtin_migration
from repro.obs import (
    EngineProfiler,
    MetricsRegistry,
    SpanTracer,
    critpath_report,
    migration_critical_paths,
    render_attribution_table,
    render_run_path,
    run_critical_path,
)
from repro.sim import Simulator, Sleep, spawn
from repro.snapshot import SweepRunner, forked_map_metrics
from repro.snapshot.sweep import SweepError


# ----------------------------------------------------------------------
# Builtin scenario capture
# ----------------------------------------------------------------------
def _captured_spans(profile=False):
    capture = _CaptureClusters(profile=profile)
    with capture:
        _trace_builtin_migration()
    assert len(capture.captured) == 1
    cluster, obs = capture.captured[0]
    return cluster, list(obs.spans.finished)


def test_attribution_partitions_every_migration_exactly():
    _cluster, spans = _captured_spans()
    rows = migration_critical_paths(spans)
    assert len(rows) == 2
    for row in rows:
        assert not row.refused
        # Phases partition the root span (== MigrationRecord.total_time
        # by the test_obs identity); parts partition each phase.
        assert sum(p.seconds for p in row.phases) == pytest.approx(
            row.ended - row.started, abs=1e-12
        )
        for phase in row.phases:
            if phase.parts:
                assert phase.parts_total() == pytest.approx(
                    phase.seconds, abs=1e-12
                )
                # Every phase ends with its (self) remainder, >= 0.
                assert phase.parts[-1].label == "(self)"
                assert all(p.seconds >= 0.0 for p in phase.parts)


def test_attribution_matches_migration_records():
    # Re-run the scenario keeping the records, via the same cluster
    # topology as the CLI's builtin target.
    from repro.fs import OpenMode

    capture = _CaptureClusters()
    with capture:
        cluster = SpriteCluster(workstations=3, start_daemons=False)
        src, dst = cluster.hosts[0], cluster.hosts[1]

        def job(proc):
            fd = yield from proc.open(
                "/critpath", OpenMode.WRITE | OpenMode.CREATE
            )
            yield from proc.compute(2.0)
            yield from proc.close(fd)
            return 0

        pcb, _ = src.spawn_process(job, name="job")
        records = []

        def driver():
            yield Sleep(0.5)
            record = yield from cluster.managers[src.address].migrate(
                pcb, dst.address, reason="manual"
            )
            records.append(record)

        spawn(cluster.sim, driver(), name="driver")
        cluster.run_until_complete(pcb.task)

    _cluster, obs = capture.captured[0]
    rows = migration_critical_paths(list(obs.spans.finished))
    assert len(rows) == 1 and len(records) == 1
    assert rows[0].total == pytest.approx(records[0].total_time, rel=1e-9)
    assert rows[0].pid == records[0].pid


def test_critpath_report_is_byte_identical_across_runs():
    _c1, spans1 = _captured_spans()
    _c2, spans2 = _captured_spans()
    report1 = critpath_report(spans1)
    report2 = critpath_report(spans2)
    assert report1 == report2
    assert "critical-path attribution (2 migrations):" in report1
    assert "= freeze" in report1
    assert "critical-path profile (whole run):" in report1


def test_run_critical_path_covers_run_without_overlap():
    _cluster, spans = _captured_spans()
    segments = run_critical_path(spans)
    assert segments
    # Segments tile [first_start, last_end] with no gaps or overlaps
    # (idle intervals appear as explicit "(idle)" segments).
    for left, right in zip(segments, segments[1:]):
        assert right.start == pytest.approx(left.end, abs=1e-12)
    assert any(s.label == "rpc.serve" for s in segments)


def test_render_empty_inputs():
    assert "(no migrations in trace)" in render_attribution_table([])
    assert "(no finished spans)" in render_run_path([])
    assert critpath_report([])  # renders, no crash


def test_rpc_causal_edge_links_serve_to_caller():
    _cluster, spans = _captured_spans()
    calls = {s.sid for s in spans if s.name == "rpc.call"}
    serves = [s for s in spans if s.name == "rpc.serve"]
    assert serves
    linked = [s for s in serves if s.attrs.get("caller_sid") in calls]
    assert linked, "rpc.serve spans must carry their caller's span id"


# ----------------------------------------------------------------------
# Engine profiler
# ----------------------------------------------------------------------
def test_profiler_defaults_off():
    sim = Simulator()
    assert sim.profiler is None


def _pingpong(sim):
    def ticker():
        for _ in range(5):
            yield Sleep(1.0)

    spawn(sim, ticker(), name="ws1:ticker")
    spawn(sim, ticker(), name="ws2:ticker")
    sim.run()
    return sim


def test_profiled_run_matches_unprofiled():
    plain = _pingpong(Simulator())
    profiled = Simulator()
    profiler = EngineProfiler()
    profiler.install(profiled)
    _pingpong(profiled)
    assert profiled.now == plain.now
    assert profiled.events_fired == plain.events_fired
    assert profiler.events == plain.events_fired
    assert sum(profiler.by_source.values()) == profiler.events


def test_profiler_counts_are_deterministic():
    def run_once():
        sim = Simulator()
        profiler = EngineProfiler()
        profiler.install(sim)
        _pingpong(sim)
        return profiler.snapshot()

    assert run_once() == run_once()


def test_profiler_render_and_merge():
    sim = Simulator()
    profiler = EngineProfiler(timing=True)
    profiler.install(sim)
    _pingpong(sim)
    EngineProfiler.uninstall(sim)
    assert sim.profiler is None

    merged = EngineProfiler()
    merged.merge_from(profiler)
    merged.merge_from(profiler)
    assert merged.events == 2 * profiler.events

    text = profiler.render(include_wall=True)
    assert "engine profile:" in text
    assert "by subsystem (shard candidates)" in text
    # Task sources bucket by host prefix ("ws1:ticker" -> "ws").
    assert "ws" in profiler.by_subsystem


def test_cli_profile_flag_attributes_subsystems():
    cluster, _spans = _captured_spans(profile=True)
    profiler = cluster.sim.profiler
    assert profiler is not None
    assert profiler.events == cluster.sim.events_fired
    assert profiler.by_subsystem  # migration demo exercises daemons


# ----------------------------------------------------------------------
# Sweep-wide metrics merging
# ----------------------------------------------------------------------
def _cell_job(index):
    registry = MetricsRegistry()
    registry.counter("cell.runs").inc()
    registry.timer("cell.value").observe(float(index + 1))
    return index * index, registry


def test_forked_map_metrics_merges_in_index_order():
    for workers in (1, 4):
        values, metrics = forked_map_metrics(_cell_job, 6, workers=workers)
        assert values == [i * i for i in range(6)]
        assert metrics.total("cell.runs") == 6
        assert metrics.merged_timer("cell.value").count == 6


def test_forked_map_metrics_snapshot_is_worker_invariant():
    _v1, m1 = forked_map_metrics(_cell_job, 6, workers=1)
    _v4, m4 = forked_map_metrics(_cell_job, 6, workers=4)
    assert m1.snapshot() == m4.snapshot()


def test_forked_map_metrics_rejects_bare_values():
    with pytest.raises(SweepError):
        forked_map_metrics(lambda i: i, 3, workers=1)


def test_sweep_runner_run_with_metrics():
    runner = SweepRunner(lambda: object(), cow=False)
    values, metrics = runner.run_with_metrics(
        [0, 1, 2], lambda _base, cell: _cell_job(cell)
    )
    assert values == [0, 1, 4]
    assert metrics.total("cell.runs") == 3
    assert metrics.merged_timer("cell.value").count == 3
