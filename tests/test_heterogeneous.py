"""Heterogeneous clusters: hardware speed as a selection criterion."""

import pytest

from repro import SpriteCluster
from repro.loadsharing import LoadSharingService
from repro.loadsharing.migd import MigdServer
from repro.sim import run_until_complete


def test_cpu_speeds_validated():
    with pytest.raises(ValueError):
        SpriteCluster(workstations=3, cpu_speeds=[1.0, 2.0])


def test_fast_host_finishes_sooner():
    cluster = SpriteCluster(
        workstations=2, start_daemons=False, cpu_speeds=[1.0, 2.0]
    )
    finish = {}

    def job(proc, label):
        yield from proc.compute(10.0)
        finish[label] = proc.now
        return 0

    slow_pcb, _ = cluster.hosts[0].spawn_process(job, "slow", name="slow")
    fast_pcb, _ = cluster.hosts[1].spawn_process(job, "fast", name="fast")
    cluster.run_until_complete(slow_pcb.task)
    cluster.run_until_complete(fast_pcb.task)
    assert finish["fast"] == pytest.approx(finish["slow"] / 2, rel=0.05)


def test_migd_prefers_faster_hardware():
    migd = MigdServer(
        SpriteCluster(workstations=1, start_daemons=False).hosts[0]
    )

    def update(host, speed, time=0.0):
        migd._handle(
            {
                "op": "update", "host": host, "load": 0.0,
                "input_idle": 100.0, "available": True, "time": time,
                "speed": speed,
            },
            client_host=host,
        )

    update(10, speed=1.0, time=0.0)    # longest idle, slow
    update(11, speed=3.0, time=20.0)   # newest, fastest
    update(12, speed=2.0, time=10.0)
    granted = migd._handle(
        {"op": "request", "client": 1, "n": 3}, client_host=1
    )["hosts"]
    assert granted == [11, 12, 10]     # by speed, not idleness


def test_migration_to_faster_host_speeds_up_job():
    """End to end: selection steers a batch job to the fast machine and
    it finishes sooner than it would have at home."""
    cluster = SpriteCluster(
        workstations=3, start_daemons=True, cpu_speeds=[1.0, 1.0, 4.0]
    )
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.standard_images()
    cluster.run(until=45.0)
    submitter = cluster.hosts[0]
    client = service.mig_client(submitter)

    def unit(proc):
        yield from proc.compute(20.0)
        return proc.pcb.current

    def coordinator(proc):
        finished = yield from client.run_batch(
            proc, [(unit, (), "unit")], image_path="/bin/sim",
            keep_one_local=False,
        )
        return finished

    start = cluster.sim.now
    pcb, _ = submitter.spawn_process(coordinator, name="batch")
    finished = cluster.run_until_complete(pcb.task)
    elapsed = cluster.sim.now - start
    # migd chose the 4x host; the 20 CPU-second job took ~5s wall time.
    assert finished[0].target == cluster.hosts[2].address
    assert elapsed < 12.0
