"""Tests for the reproduction-report assembler."""

import pathlib

import pytest

from repro.report import EXPERIMENT_ORDER, collect_report


def test_report_includes_present_artifacts(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "E1_migration_breakdown.txt").write_text("E1 TABLE CONTENT")
    (results / "E5_pmake_speedup.txt").write_text("E5 FIGURE CONTENT")
    text = collect_report(results, stamp="TEST")
    assert "E1 TABLE CONTENT" in text
    assert "E5 FIGURE CONTENT" in text
    assert "Generated TEST" in text


def test_report_lists_missing_artifacts(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    text = collect_report(results, stamp="TEST")
    assert "Missing artifacts" in text
    for name, _summary in EXPERIMENT_ORDER:
        assert name in text


def test_report_surfaces_unindexed_artifacts(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "X9_custom.txt").write_text("CUSTOM")
    text = collect_report(results, stamp="TEST")
    assert "X9_custom (unindexed artifact)" in text
    assert "CUSTOM" in text


def test_report_writes_output_file(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "E1_migration_breakdown.txt").write_text("CONTENT")
    out = tmp_path / "report.md"
    collect_report(results, output=out, stamp="TEST")
    assert out.read_text().startswith("# Reproduction report")


def test_report_order_matches_results_dir():
    """Every archived artifact from a real bench run is indexed."""
    results = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "results"
    if not results.is_dir():
        pytest.skip("benchmarks not yet run")
    indexed = {name for name, _ in EXPERIMENT_ORDER}
    actual = {p.stem for p in results.glob("*.txt")}
    assert actual <= indexed, f"unindexed artifacts: {actual - indexed}"
