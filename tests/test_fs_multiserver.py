"""Multi-server namespaces: prefix routing under migration and load."""

from repro import SpriteCluster
from repro.fs import OpenMode
from repro.sim import Sleep, spawn


def make_two_server_cluster():
    cluster = SpriteCluster(workstations=3, file_servers=2, start_daemons=False)
    # fs0 exports /, fs1 exports /srv1.
    return cluster


def test_second_server_owns_its_prefix():
    cluster = make_two_server_cluster()

    def job(proc):
        fd = yield from proc.open("/srv1/data", OpenMode.WRITE | OpenMode.CREATE)
        yield from proc.write(fd, 8192)
        yield from proc.close(fd)
        fd = yield from proc.open("/rootfile", OpenMode.WRITE | OpenMode.CREATE)
        yield from proc.close(fd)
        return 0

    cluster.run_process(cluster.hosts[0], job)
    assert "/srv1/data" in cluster.server_hosts[1].server.files
    assert "/srv1/data" not in cluster.server_hosts[0].server.files
    assert "/rootfile" in cluster.server_hosts[0].server.files


def test_migration_with_streams_on_both_servers():
    """Streams on different I/O servers each get their own hand-off."""
    cluster = make_two_server_cluster()
    a, b = cluster.hosts[0], cluster.hosts[1]
    cluster.server_hosts[0].server.add_file("/on-root", size=50_000)
    cluster.server_hosts[1].server.add_file("/srv1/on-srv1", size=50_000)

    def job(proc):
        fd_root = yield from proc.open("/on-root", OpenMode.READ)
        fd_srv = yield from proc.open("/srv1/on-srv1", OpenMode.READ)
        yield from proc.read(fd_root, 10_000)
        yield from proc.read(fd_srv, 20_000)
        yield from proc.compute(2.0)          # migration point
        more_root = yield from proc.read(fd_root, 10_000)
        more_srv = yield from proc.read(fd_srv, 10_000)
        offsets = (
            proc.pcb.stream(fd_root).offset,
            proc.pcb.stream(fd_srv).offset,
        )
        yield from proc.close(fd_root)
        yield from proc.close(fd_srv)
        return (more_root, more_srv, offsets, proc.pcb.current)

    pcb, _ = a.spawn_process(job, name="job")
    records = []

    def driver():
        yield Sleep(0.5)
        record = yield from cluster.managers[a.address].migrate(pcb, b.address)
        records.append(record)

    spawn(cluster.sim, driver(), name="driver")
    more_root, more_srv, offsets, where = cluster.run_until_complete(pcb.task)
    assert where == b.address
    assert (more_root, more_srv) == (10_000, 10_000)
    assert offsets == (20_000, 30_000)
    assert records[0].streams_moved == 2


def test_vm_backing_stays_on_root_server():
    """Backing files route to / even when other servers exist."""
    cluster = make_two_server_cluster()
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.use_memory(1024 * 1024)
        yield from proc.dirty_memory(512 * 1024)
        yield from proc.compute(3.0)
        yield from proc.compute(0.5)   # settles page-in debt post-move
        return 0

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.5)
        yield from cluster.managers[a.address].migrate(pcb, b.address)

    spawn(cluster.sim, driver(), name="driver")
    cluster.run_until_complete(pcb.task)
    root_server = cluster.server_hosts[0].server
    srv1_server = cluster.server_hosts[1].server
    assert root_server.bytes_written >= 512 * 1024       # the flush
    assert srv1_server.bytes_written == 0                # not to /srv1
    # The backing file was created on / and removed at process exit.
    assert not any(path.startswith("/swap/") for path in root_server.files)
    assert root_server.bytes_read >= 512 * 1024          # demand page-in
