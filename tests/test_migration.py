"""Tests for the migration mechanism: transparency, policies, eviction."""

import pytest

from repro import SpriteCluster
from repro.fs import OpenMode
from repro.kernel import signals as sig
from repro.migration import MigrationRefused
from repro.sim import Sleep


def make_cluster(n=3, **kwargs):
    return SpriteCluster(workstations=n, start_daemons=False, **kwargs)


def migrate_driver(cluster, pcb, target_host, reason="manual", out=None):
    """A task that migrates ``pcb`` to ``target_host`` after a beat."""
    manager = cluster.managers[pcb.current]

    def driver():
        yield Sleep(0.5)
        record = yield from manager.migrate(pcb, target_host.address, reason=reason)
        if out is not None:
            out.append(record)

    return driver()


def test_migrated_process_finishes_on_target():
    cluster = make_cluster()
    src, dst = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(3.0)
        return proc.pcb.current

    pcb, _ = src.spawn_process(job, name="job")
    records = []
    from repro.sim import spawn

    spawn(cluster.sim, migrate_driver(cluster, pcb, dst, out=records), name="driver")
    final_host = cluster.run_until_complete(pcb.task)
    assert final_host == dst.address
    assert len(records) == 1
    assert records[0].freeze_time > 0
    assert records[0].pid == pcb.pid


def test_cpu_charged_on_target_after_migration():
    cluster = make_cluster()
    src, dst = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(4.0)

    pcb, _ = src.spawn_process(job, name="job")
    from repro.sim import spawn

    spawn(cluster.sim, migrate_driver(cluster, pcb, dst), name="driver")
    cluster.run_until_complete(pcb.task)
    # ~0.5s ran at the source; the remaining ~3.5s at the target.
    assert src.cpu.total_demand == pytest.approx(0.5, abs=0.3)
    assert dst.cpu.total_demand >= 3.0


def test_transparency_gethostname_reports_home():
    cluster = make_cluster()
    src, dst = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(2.0)
        name = yield from proc.gethostname()
        return (name, proc.pcb.current)

    pcb, _ = src.spawn_process(job, name="job")
    from repro.sim import spawn

    spawn(cluster.sim, migrate_driver(cluster, pcb, dst), name="driver")
    name, where = cluster.run_until_complete(pcb.task)
    assert where == dst.address      # physically on the target...
    assert name == src.name          # ...but transparently "at home"


def test_forwarded_calls_counted():
    cluster = make_cluster()
    src, dst = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(1.0)
        for _ in range(5):
            yield from proc.gettimeofday()
        return 0

    pcb, _ = src.spawn_process(job, name="job")
    from repro.sim import spawn

    spawn(cluster.sim, migrate_driver(cluster, pcb, dst), name="driver")
    cluster.run_until_complete(pcb.task)
    assert dst.kernel.calls_forwarded_home >= 5


def test_home_ps_shows_migrated_shadow():
    cluster = make_cluster()
    src, dst = cluster.hosts[0], cluster.hosts[1]
    snapshots = {}

    def job(proc):
        yield from proc.compute(3.0)

    def observer(proc, pid):
        yield from proc.compute(1.5)
        listing = yield from proc.ps()
        snapshots["home"] = {
            entry["pid"]: entry["state"] for entry in listing
        }.get(pid)
        return 0

    pcb, _ = src.spawn_process(job, name="job")
    obs_pcb, _ = src.spawn_process(observer, pcb.pid, name="obs")
    from repro.sim import spawn

    spawn(cluster.sim, migrate_driver(cluster, pcb, dst), name="driver")
    cluster.run_until_complete(pcb.task)
    cluster.run_until_complete(obs_pcb.task)
    assert snapshots["home"] == "migrated"


def test_open_file_survives_migration_with_offset():
    cluster = make_cluster()
    src, dst = cluster.hosts[0], cluster.hosts[1]
    cluster.add_file("/data", size=1_000_000)

    def job(proc):
        fd = yield from proc.open("/data", OpenMode.READ)
        yield from proc.read(fd, 100_000)
        yield from proc.compute(2.0)      # migration happens here
        more = yield from proc.read(fd, 100_000)
        offset = proc.pcb.stream(fd).offset
        yield from proc.close(fd)
        return (more, offset)

    pcb, _ = src.spawn_process(job, name="job")
    from repro.sim import spawn

    spawn(cluster.sim, migrate_driver(cluster, pcb, dst), name="driver")
    more, offset = cluster.run_until_complete(pcb.task)
    assert more == 100_000
    assert offset == 200_000


def test_dirty_file_blocks_flushed_at_migration():
    cluster = make_cluster()
    src, dst = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        fd = yield from proc.open("/wlog", OpenMode.WRITE | OpenMode.CREATE)
        yield from proc.write(fd, 64 * 1024)
        yield from proc.compute(2.0)      # migration here
        yield from proc.write(fd, 4096)
        yield from proc.close(fd)
        return 0

    pcb, _ = src.spawn_process(job, name="job")
    from repro.sim import spawn

    spawn(cluster.sim, migrate_driver(cluster, pcb, dst), name="driver")
    cluster.run_until_complete(pcb.task)
    # The 64 KB written before migration was flushed to the server.
    assert cluster.file_server.bytes_written >= 64 * 1024


def test_remote_fork_and_wait():
    cluster = make_cluster()
    src, dst = cluster.hosts[0], cluster.hosts[1]

    def child(proc):
        yield from proc.compute(0.3)
        yield from proc.exit(9)

    def parent(proc):
        yield from proc.compute(2.0)      # migrates mid-way
        child_pid = yield from proc.fork(child, name="kid")
        status = yield from proc.wait()
        return (child_pid, status.code, proc.pcb.current)

    pcb, _ = src.spawn_process(parent, name="parent")
    from repro.sim import spawn
    from repro.kernel import home_of_pid

    spawn(cluster.sim, migrate_driver(cluster, pcb, dst), name="driver")
    child_pid, code, where = cluster.run_until_complete(pcb.task)
    assert code == 9
    assert where == dst.address
    # Child's pid was allocated by the parent's home kernel.
    assert home_of_pid(child_pid) == src.address


def test_signal_routed_to_migrated_process():
    cluster = make_cluster()
    src, dst, other = cluster.hosts[0], cluster.hosts[1], cluster.hosts[2]

    def victim(proc):
        yield from proc.compute(50.0)

    def killer(proc, pid):
        yield from proc.compute(3.0)     # after the victim has migrated
        yield from proc.kill(pid, sig.SIGTERM)

    pcb, _ = src.spawn_process(victim, name="victim")
    other.spawn_process(killer, pcb.pid, name="killer")
    from repro.sim import spawn

    spawn(cluster.sim, migrate_driver(cluster, pcb, dst), name="driver")
    code = cluster.run_until_complete(pcb.task)
    assert code == 128 + sig.SIGTERM
    assert pcb.current == dst.address


def test_double_migration_updates_home():
    cluster = make_cluster()
    a, b, c = cluster.hosts[0], cluster.hosts[1], cluster.hosts[2]

    def job(proc):
        yield from proc.compute(6.0)
        return proc.pcb.current

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.5)
        yield from cluster.managers[a.address].migrate(pcb, b.address)
        yield Sleep(2.0)
        yield from cluster.managers[b.address].migrate(pcb, c.address)

    from repro.sim import spawn

    spawn(cluster.sim, driver(), name="driver")
    final = cluster.run_until_complete(pcb.task)
    assert final == c.address
    # Home shadow tracked the second hop.
    shadow = a.kernel.procs[pcb.pid]
    # By completion the process exited; the shadow became a zombie with
    # the exit recorded from host c.
    assert shadow.exit_status.exit_host == c.address
    # No residual state on the intermediate host.
    assert pcb.pid not in b.kernel.procs


def test_migrate_back_home_clears_shadow():
    cluster = make_cluster()
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(4.0)
        return proc.pcb.current

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.5)
        yield from cluster.managers[a.address].migrate(pcb, b.address)
        yield Sleep(1.0)
        yield from cluster.managers[b.address].migrate(pcb, a.address, reason="eviction")

    from repro.sim import spawn

    spawn(cluster.sim, driver(), name="driver")
    final = cluster.run_until_complete(pcb.task)
    assert final == a.address
    entry = a.kernel.procs[pcb.pid]
    assert entry is pcb  # resident object back home, shadow replaced
    assert pcb.pid not in b.kernel.procs


def test_version_mismatch_refused():
    """A1 ablation: kernels advertising different migration versions
    refuse to migrate rather than corrupt state (thesis §4.5)."""
    cluster = make_cluster()
    a, b = cluster.hosts[0], cluster.hosts[1]
    # Host b runs an "older kernel": its negotiate answers with the old
    # version number, which the protocol rejects.
    manager_b = cluster.managers[b.address]
    old_version = cluster.params.migration_version - 1

    def old_negotiate(args):
        if args["version"] != old_version:
            return {
                "accept": False,
                "why": f"migration version mismatch: theirs {args['version']}, ours {old_version}",
            }
        return {"accept": True}
        yield  # pragma: no cover

    manager_b.host.rpc.register("mig.negotiate", old_negotiate)

    def job(proc):
        yield from proc.compute(2.0)
        return 0

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.2)
        try:
            yield from cluster.managers[a.address].migrate(pcb, b.address)
        except MigrationRefused as refusal:
            return f"refused: {refusal}"
        return "accepted"

    from repro.sim import spawn

    driver_task = spawn(cluster.sim, driver(), name="driver")
    cluster.run_until_complete(pcb.task)
    assert driver_task.result.startswith("refused")
    assert "version mismatch" in driver_task.result
    refusals = [r for r in cluster.migration_records() if r.refused]
    assert len(refusals) == 1


def test_accept_hook_can_refuse_foreign_work():
    cluster = make_cluster()
    a, b = cluster.hosts[0], cluster.hosts[1]
    cluster.managers[b.address].accept_hook = lambda args: False

    def job(proc):
        yield from proc.compute(1.0)
        return 0

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.2)
        try:
            yield from cluster.managers[a.address].migrate(pcb, b.address)
        except MigrationRefused:
            return "refused"

    from repro.sim import spawn

    driver_task = spawn(cluster.sim, driver(), name="driver")
    cluster.run_until_complete(pcb.task)
    assert driver_task.result == "refused"


def test_home_always_accepts_eviction_despite_hook():
    cluster = make_cluster()
    a, b = cluster.hosts[0], cluster.hosts[1]
    # Even with a refuse-everything hook, home must accept its own.
    cluster.managers[a.address].accept_hook = lambda args: False

    def job(proc):
        yield from proc.compute(4.0)
        return proc.pcb.current

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.2)
        yield from cluster.managers[a.address].migrate(pcb, b.address)
        yield Sleep(1.0)
        yield from cluster.managers[b.address].migrate(pcb, a.address, reason="eviction")

    from repro.sim import spawn

    spawn(cluster.sim, driver(), name="driver")
    assert cluster.run_until_complete(pcb.task) == a.address


def test_shared_writable_memory_not_migratable():
    cluster = make_cluster()
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(2.0)

    pcb, _ = a.spawn_process(job, name="job")
    pcb.vm.shared_writable = True

    def driver():
        yield Sleep(0.2)
        try:
            yield from cluster.managers[a.address].migrate(pcb, b.address)
        except MigrationRefused:
            return "refused"

    from repro.sim import spawn

    driver_task = spawn(cluster.sim, driver(), name="driver")
    cluster.run_until_complete(pcb.task)
    assert driver_task.result == "refused"


def test_exec_time_migration_skips_vm():
    cluster = make_cluster()
    a, b = cluster.hosts[0], cluster.hosts[1]
    cluster.standard_images()

    def remote_main(proc, token):
        yield from proc.compute(0.5)
        return (token, proc.pcb.current)

    def launcher(proc):
        yield from proc.use_memory(4 * 1024 * 1024)   # big image, then exec
        yield from proc.exec(
            remote_main, "hello", host=b.address, image_path="/bin/sim"
        )

    pcb, _ = a.spawn_process(launcher, name="launcher")
    token, where = cluster.run_until_complete(pcb.task)
    assert token == "hello"
    assert where == b.address
    records = cluster.migration_records()
    assert len(records) == 1
    assert records[0].reason == "exec"
    assert records[0].vm is None  # no VM moved


def test_eviction_sends_foreign_work_home():
    cluster = make_cluster()
    a, b = cluster.hosts[0], cluster.hosts[1]
    evictor_b = cluster.evictors[1]
    from repro.sim import spawn

    def job(proc):
        yield from proc.compute(10.0)
        return proc.pcb.current

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.5)
        yield from cluster.managers[a.address].migrate(pcb, b.address)

    def user_returns():
        yield Sleep(3.0)
        b.user_input()
        event = yield from evictor_b.evict_now()
        return event

    spawn(cluster.sim, driver(), name="driver")
    evict_task = spawn(cluster.sim, user_returns(), name="evict")
    final = cluster.run_until_complete(pcb.task)
    assert final == a.address   # finished back at home
    event = evict_task.result
    assert event.victims == 1
    assert event.reclaim_seconds >= 0


def test_eviction_daemon_triggers_on_user_input():
    cluster = SpriteCluster(workstations=2, start_daemons=True)
    a, b = cluster.hosts[0], cluster.hosts[1]
    from repro.sim import spawn

    def job(proc):
        yield from proc.compute(30.0)
        return proc.pcb.current

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.5)
        yield from cluster.managers[a.address].migrate(pcb, b.address)
        yield Sleep(5.0)
        b.user_input()   # the daemon notices within its poll period

    spawn(cluster.sim, driver(), name="driver")
    final = cluster.run_until_complete(pcb.task)
    assert final == a.address
    assert len(cluster.evictors[1].events) == 1


def test_migration_record_stream_count():
    cluster = make_cluster()
    a, b = cluster.hosts[0], cluster.hosts[1]
    for i in range(4):
        cluster.add_file(f"/in{i}", size=1024)

    def job(proc):
        fds = []
        for i in range(4):
            fd = yield from proc.open(f"/in{i}", OpenMode.READ)
            fds.append(fd)
        yield from proc.compute(2.0)
        for fd in fds:
            yield from proc.close(fd)
        return 0

    pcb, _ = a.spawn_process(job, name="job")
    records = []
    from repro.sim import spawn

    spawn(cluster.sim, migrate_driver(cluster, pcb, b, out=records), name="driver")
    cluster.run_until_complete(pcb.task)
    assert records[0].streams_moved == 4


def test_kill_during_freeze_delivered_after_resume():
    """A signal arriving while the process is frozen waits for the
    transfer and kills it on the target (Sprite queues signals for
    migrating processes)."""
    cluster = make_cluster(2)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.use_memory(4 * 1024 * 1024)
        yield from proc.dirty_memory(4 * 1024 * 1024)   # slow freeze
        yield from proc.compute(60.0)
        return proc.pcb.current

    pcb, _ = a.spawn_process(job, name="victim")
    from repro.kernel import signals as ksig

    def driver():
        yield Sleep(0.5)
        yield from cluster.managers[a.address].migrate(pcb, b.address)

    def killer():
        # Mid-freeze: the 4 MB flush takes seconds.
        yield Sleep(1.5)
        assert pcb.migration_ticket is not None or pcb.current == b.address
        pcb.pending_signals.append(ksig.SIGTERM)

    from repro.sim import spawn as sim_spawn

    sim_spawn(cluster.sim, driver(), name="driver")
    sim_spawn(cluster.sim, killer(), name="killer")
    code = cluster.run_until_complete(pcb.task)
    assert code == 128 + ksig.SIGTERM
    # It died *after* installation on the target.
    assert pcb.current == b.address


# ----------------------------------------------------------------------
# Transactional abort paths: partial exports, lease expiry, repair
# ----------------------------------------------------------------------
def test_partial_stream_export_failure_rolls_back_exported_streams():
    """If the Nth stream export fails mid-loop, the N-1 already-exported
    references are pulled back: the process keeps running at the source
    with every stream usable, and the transaction journal drains."""
    from repro.fs import FsError

    cluster = make_cluster()
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        fd1 = yield from proc.open("/a", OpenMode.WRITE | OpenMode.CREATE)
        fd2 = yield from proc.open("/b", OpenMode.WRITE | OpenMode.CREATE)
        yield from proc.compute(5.0)
        # Both streams must still work after the failed migration.
        yield from proc.write(fd1, 100)
        yield from proc.write(fd2, 100)
        yield from proc.close(fd1)
        yield from proc.close(fd2)
        return 0

    pcb, _ = a.spawn_process(job, name="job")
    cluster.run(until=1.0)
    stream_ids = sorted(s.stream_id for s in pcb.streams.values())
    assert len(stream_ids) == 2

    real_export = a.fs.export_stream
    calls = {"n": 0}

    def flaky_export(stream, to_client):
        calls["n"] += 1
        if calls["n"] == 2:
            def boom():
                raise FsError("injected export failure")
                yield  # pragma: no cover - makes this a generator
            return boom()
        return real_export(stream, to_client)

    a.fs.export_stream = flaky_export
    manager = cluster.managers[a.address]
    refusals = []

    def driver():
        try:
            yield from manager.migrate(pcb, b.address, reason="manual")
        except MigrationRefused as err:
            refusals.append(str(err))
        a.fs.export_stream = real_export

    from repro.sim import spawn

    spawn(cluster.sim, driver(), name="driver")
    code = cluster.run_until_complete(pcb.task)

    assert code == 0
    assert refusals and "stream export" in refusals[0]
    assert pcb.current == a.address
    # The first export was rolled back: nothing was left addressed to
    # the target, and the journal kept no open transaction behind.
    assert manager.journal.open_txns() == []
    assert manager.rollback_incomplete == 0
    server = cluster.server_hosts[0].server
    for path in ("/a", "/b"):
        for refs in server.file(path).stream_refs.values():
            assert b.address not in refs


def test_aborted_transfer_ticket_expires_and_reclaims_reservation():
    """Source dies right after mig.install: the target's inactive copy
    sits under its lease (memory reserved) until the TTL reaps it, and
    a late duplicate mig.install for the same (pid, ticket) is refused
    without disturbing anything."""
    cluster = make_cluster()
    a, b, c = cluster.hosts[0], cluster.hosts[1], cluster.hosts[2]

    def job(proc):
        yield from proc.compute(500.0)
        return 0

    pcb, _ = a.spawn_process(job, name="job")
    pcb.vm.size = 1 << 20
    src_manager = cluster.managers[a.address]
    dst_manager = cluster.managers[b.address]
    outcomes = []

    def kill_source(txn, step):
        if step == "shipped":
            a.crash()  # never rebooted: the lease must die by expiry

    src_manager.journal.on_step = kill_source

    def driver():
        yield Sleep(0.5)
        try:
            yield from src_manager.migrate(pcb, b.address, reason="manual")
        except MigrationRefused as err:
            outcomes.append(type(err).__name__)

    from repro.migration import MigrationAbandoned
    from repro.sim import spawn

    spawn(cluster.sim, driver(), name="driver")
    cluster.run(until=3.0)
    src_manager.journal.on_step = None

    assert outcomes == ["MigrationAbandoned"]
    assert MigrationAbandoned is not None
    # The inactive copy is leased and its memory reserved...
    (lease,) = dst_manager._tickets.values()
    assert lease.status == "installed"
    assert lease.install is not None
    assert dst_manager.reserved_bytes == 1 << 20
    expires = lease.expires
    ticket_id = lease.ticket_id

    # ...until the TTL passes: reaped, reservation reclaimed, and the
    # copy never activated (no second runnable copy ever existed).
    cluster.run(until=expires + 1.0)
    assert dst_manager._tickets == {}
    assert dst_manager.reserved_bytes == 0
    assert pcb.pid not in b.kernel.procs

    # A late duplicate install (e.g. a retransmit that slept through the
    # outage) is rejected idempotently for the same (pid, ticket).
    replies = []

    def late_install():
        reply = yield from c.rpc.call(
            b.address, "mig.install",
            {"pcb": pcb, "pid": pcb.pid, "ticket": ticket_id,
             "streams": [], "cpu_time": 0.0},
        )
        replies.append(reply)

    spawn(cluster.sim, late_install(), name="late-install")
    cluster.run(until=cluster.sim.now + 5.0)
    assert replies and not replies[0]["installed"]
    assert "unknown or expired" in replies[0]["why"]
    assert dst_manager._tickets == {}
    assert dst_manager.reserved_bytes == 0


def test_rollback_retry_exhaustion_hands_off_to_repair():
    """When every rollback retry fails (source partitioned away from
    the file server), the abort is counted in ``rollback_incomplete``
    and a background repair task finishes the undo once the network
    heals — nothing stays leaked."""
    from repro.faults import FaultInjector
    from repro.migration import rollback_stats

    cluster = make_cluster()
    injector = FaultInjector(cluster)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.open("/a", OpenMode.WRITE | OpenMode.CREATE)
        yield from proc.compute(500.0)
        return 0

    pcb, _ = a.spawn_process(job, name="job")
    cluster.run(until=1.0)
    manager = cluster.managers[a.address]
    refusals = []

    def cut_network(txn, step):
        # Fire after the stream left for the target: the install RPC
        # fails, and so does every undo RPC until the heal.
        if step == "streams_exported":
            injector.partition([a.address])

    manager.journal.on_step = cut_network

    def driver():
        try:
            yield from manager.migrate(pcb, b.address, reason="manual")
        except MigrationRefused as err:
            refusals.append(str(err))

    def healer():
        yield Sleep(20.0)
        injector.heal()

    from repro.sim import spawn

    spawn(cluster.sim, driver(), name="driver")
    spawn(cluster.sim, healer(), name="healer", daemon=True)
    cluster.run(until=15.0)
    manager.journal.on_step = None

    # Retries exhausted while partitioned: handed off to repair.
    assert refusals
    stats = rollback_stats(cluster.managers.values())
    assert stats["rollback_incomplete"] == 1
    assert stats["rollback_pending"] == 1

    # After the heal the repair daemon completes the undo.
    cluster.run(until=60.0)
    stats = rollback_stats(cluster.managers.values())
    assert stats["rollback_pending"] == 0
    assert manager.journal.open_txns() == []
    assert pcb.current == a.address
    # The stream reference is home again and still usable.
    stream = next(iter(pcb.streams.values()))
    assert stream.stream_id in a.fs.open_streams
