"""Tests for the four VM-transfer policies (thesis §4.2.1, experiment E2)."""

import pytest

from repro import MB, SpriteCluster
from repro.migration import make_policy
from repro.sim import Sleep, spawn


def run_one_migration(policy_name, vm_bytes, dirty_bytes, dirty_rate=0.0,
                      compute=60.0):
    """Migrate a process with the given VM footprint under a policy.

    The job computes long enough that even pre-copy's rounds (which run
    while the process executes) finish before it does.  Returns
    (record, cluster, pcb).
    """
    cluster = SpriteCluster(workstations=2, start_daemons=False,
                            vm_policy=policy_name)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.use_memory(vm_bytes)
        if dirty_bytes:
            yield from proc.dirty_memory(dirty_bytes)
        proc.pcb.vm.dirty_rate_hint = dirty_rate
        yield from proc.compute(compute)
        return proc.pcb.current

    pcb, _ = a.spawn_process(job, name="job")
    records = []

    def driver():
        yield Sleep(1.0)
        record = yield from cluster.managers[a.address].migrate(pcb, b.address)
        records.append(record)

    spawn(cluster.sim, driver(), name="driver")
    final = cluster.run_until_complete(pcb.task)
    assert final == b.address
    return records[0], cluster, pcb


def test_flush_to_server_flushes_dirty_and_demand_pages():
    record, cluster, pcb = run_one_migration("flush-to-server", 2 * MB, 1 * MB)
    assert record.vm.policy == "flush-to-server"
    assert record.vm.bytes_during_freeze == 1 * MB          # the dirty MB
    assert record.vm.post_resume_debt == 2 * MB             # demand-paged later
    assert record.vm.residual_dependency is False
    # The flush really reached the file server; the page-ins came back.
    assert cluster.file_server.bytes_written >= 1 * MB
    assert cluster.file_server.bytes_read >= 2 * MB
    assert pcb.vm.page_in_debt == 0                         # settled


def test_full_copy_moves_whole_image_in_freeze():
    record, _cluster, _pcb = run_one_migration("full-copy", 2 * MB, 1 * MB)
    assert record.vm.bytes_during_freeze == 2 * MB
    assert record.vm.post_resume_debt == 0
    assert record.vm.residual_dependency is False


def test_full_copy_freeze_grows_with_size():
    small, _c, _p = run_one_migration("full-copy", 1 * MB, 0)
    large, _c, _p = run_one_migration("full-copy", 8 * MB, 0)
    assert large.freeze_time > 4 * small.freeze_time


def test_pre_copy_shortens_freeze():
    full, _c, _p = run_one_migration("full-copy", 4 * MB, 0)
    pre, _c, _p = run_one_migration(
        "pre-copy", 4 * MB, 0, dirty_rate=64 * 1024
    )
    assert pre.freeze_time < full.freeze_time / 4
    assert pre.vm.rounds >= 2
    # Pre-copy pays with total bytes: at least the whole image moved.
    assert pre.vm.bytes_total >= 4 * MB


def test_pre_copy_high_dirty_rate_hits_round_cap():
    record, _c, _p = run_one_migration(
        "pre-copy", 4 * MB, 0, dirty_rate=100 * MB
    )
    # The remainder never converges; rounds cap bounds the work.
    assert record.vm.rounds >= 5


def test_copy_on_reference_fast_freeze_residual_source():
    cor, cluster, pcb = run_one_migration("copy-on-reference", 4 * MB, 2 * MB)
    full, _c, _p = run_one_migration("full-copy", 4 * MB, 2 * MB)
    assert cor.freeze_time < full.freeze_time / 10
    assert cor.vm.residual_dependency is True
    assert cor.vm.post_resume_debt == 4 * MB
    assert pcb.vm.page_in_debt == 0  # faulted in from the source afterwards


def test_policy_freeze_ordering_matches_paper():
    """§4.2.1's qualitative comparison: COR < pre-copy < full-copy in
    freeze time for a large address space."""
    freeze = {}
    for name in ("copy-on-reference", "pre-copy", "full-copy"):
        record, _c, _p = run_one_migration(name, 8 * MB, 0, dirty_rate=32 * 1024)
        freeze[name] = record.freeze_time
    assert freeze["copy-on-reference"] < freeze["pre-copy"] < freeze["full-copy"]


def test_flush_policy_cheap_when_clean():
    """A clean address space (all pages backed by the server) makes
    Sprite's eviction flush nearly free."""
    clean, _c, _p = run_one_migration("flush-to-server", 4 * MB, 0)
    dirty, _c, _p = run_one_migration("flush-to-server", 4 * MB, 4 * MB)
    assert clean.freeze_time < dirty.freeze_time / 5


def test_make_policy_unknown_name():
    with pytest.raises(ValueError, match="unknown VM policy"):
        make_policy("teleport")


def test_policies_registry_complete():
    from repro.migration import POLICIES

    assert set(POLICIES) == {
        "flush-to-server", "full-copy", "pre-copy", "copy-on-reference"
    }
