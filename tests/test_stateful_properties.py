"""Stateful invariants under randomized migration injection.

The strongest correctness claim in the thesis is that migration is
*invisible*: whatever a process computes, it computes the same with
migrations injected at arbitrary points.  These tests run I/O-heavy
programs while a chaos driver migrates them at random times between
random hosts, and assert the results are byte-identical to the
undisturbed run.
"""

import numpy as np
import pytest

from repro import SpriteCluster
from repro.fs import OpenMode
from repro.migration import MigrationRefused
from repro.sim import Sleep, spawn


def chaos_driver(cluster, pcb, seed, period=0.7):
    """Migrate ``pcb`` to a random other host every ~period seconds."""
    rng = np.random.default_rng(seed)

    def driver():
        while pcb.alive and not pcb.task.done:
            yield Sleep(float(rng.uniform(0.3, period * 2)))
            if pcb.task.done:
                return
            candidates = [
                h.address for h in cluster.hosts if h.address != pcb.current
            ]
            target = int(rng.choice(candidates))
            manager = cluster.managers.get(pcb.current)
            if manager is None:
                continue
            try:
                yield from manager.migrate(pcb, target, reason="chaos")
            except MigrationRefused:
                continue

    return driver()


def sequential_reader(proc, path, total, chunk):
    fd = yield from proc.open(path, OpenMode.READ)
    got = 0
    while True:
        n = yield from proc.read(fd, chunk)
        if n == 0:
            break
        got += n
        yield from proc.compute(0.2)
    yield from proc.close(fd)
    return got


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_file_read_identical_under_chaos_migration(seed):
    total = 400_000
    chunk = 32_768
    cluster = SpriteCluster(workstations=4, start_daemons=False, seed=seed)
    cluster.add_file("/big", size=total)
    pcb, _ = cluster.hosts[0].spawn_process(
        sequential_reader, "/big", total, chunk, name="reader"
    )
    spawn(cluster.sim, chaos_driver(cluster, pcb, seed), name="chaos", daemon=True)
    got = cluster.run_until_complete(pcb.task)
    assert got == total
    moved = [r for r in cluster.migration_records() if not r.refused]
    assert moved, "chaos driver never managed a migration"


@pytest.mark.parametrize("seed", [3, 11])
def test_writer_under_chaos_produces_exact_file(seed):
    cluster = SpriteCluster(workstations=4, start_daemons=False, seed=seed)

    def writer(proc):
        fd = yield from proc.open("/out", OpenMode.WRITE | OpenMode.CREATE)
        for _ in range(12):
            yield from proc.write(fd, 8192)
            yield from proc.compute(0.3)
        yield from proc.close(fd)
        info = yield from proc.stat("/out")
        return info["size"]

    pcb, _ = cluster.hosts[0].spawn_process(writer, name="writer")
    spawn(cluster.sim, chaos_driver(cluster, pcb, seed), name="chaos", daemon=True)
    size = cluster.run_until_complete(pcb.task)
    assert size == 12 * 8192


def test_family_tree_consistent_under_chaos():
    """Forks, waits, and exit codes survive arbitrary parent migration."""
    cluster = SpriteCluster(workstations=4, start_daemons=False, seed=5)

    def child(proc, code):
        yield from proc.compute(0.5)
        yield from proc.exit(code)

    def parent(proc):
        codes = []
        for round_index in range(4):
            yield from proc.fork(child, 10 + round_index, name=f"kid{round_index}")
            yield from proc.compute(0.4)
            status = yield from proc.wait()
            codes.append(status.code)
        return sorted(codes)

    pcb, _ = cluster.hosts[0].spawn_process(parent, name="parent")
    spawn(cluster.sim, chaos_driver(cluster, pcb, 5, period=0.4), name="chaos",
          daemon=True)
    codes = cluster.run_until_complete(pcb.task)
    assert codes == [10, 11, 12, 13]
    moved = [r for r in cluster.migration_records() if not r.refused]
    assert moved


def test_accounting_conserved_under_chaos():
    """CPU time is neither lost nor double-charged by migrations."""
    cluster = SpriteCluster(workstations=3, start_daemons=False, seed=9)
    demand = 6.0

    def job(proc):
        yield from proc.compute(demand)
        usage = yield from proc.getrusage()
        return usage["cpu_time"]

    pcb, _ = cluster.hosts[0].spawn_process(job, name="job")
    spawn(cluster.sim, chaos_driver(cluster, pcb, 9, period=0.5), name="chaos",
          daemon=True)
    cpu_time = cluster.run_until_complete(pcb.task)
    assert cpu_time == pytest.approx(demand, rel=0.05)
    # And the hosts' total demand matches what the process consumed
    # (plus kernel overheads, bounded).
    total = sum(h.cpu.total_demand for h in cluster.hosts)
    assert demand <= total < demand + 2.0


def test_many_concurrent_migrations_between_same_pair():
    """Six processes migrate simultaneously A->B: the protocol handles
    concurrent transfers without interleaving corruption."""
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    a, b = cluster.hosts[0], cluster.hosts[1]
    pcbs = []

    def job(proc, index):
        yield from proc.compute(10.0)
        return proc.pcb.current

    for i in range(6):
        pcb, _ = a.spawn_process(job, i, name=f"job{i}")
        pcbs.append(pcb)

    def driver(pcb):
        yield Sleep(0.5)
        yield from cluster.managers[a.address].migrate(pcb, b.address)

    for pcb in pcbs:
        spawn(cluster.sim, driver(pcb), name=f"driver{pcb.pid}", daemon=True)
    finals = [cluster.run_until_complete(pcb.task) for pcb in pcbs]
    assert finals == [b.address] * 6
    completed = [r for r in cluster.migration_records() if not r.refused]
    assert len(completed) == 6
    # Every shadow at home points at the target (until exit zombied them).
    for pcb in pcbs:
        assert a.kernel.procs[pcb.pid].exit_status is not None


def test_crossing_migrations_swap_hosts():
    """Two processes swap hosts simultaneously (A->B while B->A)."""
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(8.0)
        return proc.pcb.current

    pcb_a, _ = a.spawn_process(job, name="from-a")
    pcb_b, _ = b.spawn_process(job, name="from-b")

    def driver(pcb, manager_addr, target):
        yield Sleep(0.5)
        yield from cluster.managers[manager_addr].migrate(pcb, target)

    spawn(cluster.sim, driver(pcb_a, a.address, b.address), name="d1", daemon=True)
    spawn(cluster.sim, driver(pcb_b, b.address, a.address), name="d2", daemon=True)
    final_a = cluster.run_until_complete(pcb_a.task)
    final_b = cluster.run_until_complete(pcb_b.task)
    assert final_a == b.address
    assert final_b == a.address
