"""Tests for file-server crash recovery (stateful-server model).

Sprite servers keep per-client state (opens, caching, shared offsets);
a crash loses it, and clients rebuild it by re-asserting their open
streams.  The dual invariants: no delayed-write data is lost (clients
still hold it and re-flush), and consistency decisions after recovery
match what a never-crashed server would decide.
"""

from repro.fs import OpenMode
from repro.net import RpcTimeout

from .helpers import MiniCluster


def make_cluster(clients=2):
    return MiniCluster(clients=clients, rpc_timeout=0.5, rpc_retries=0)


def test_reopen_restores_open_counts():
    cluster = make_cluster(1)
    cluster.server.add_file("/f", size=1000)
    fs = cluster.clients[0].fs

    def scenario():
        stream = yield from fs.open("/f", OpenMode.READ_WRITE)
        cluster.server.crash()
        cluster.server.restart()
        assert cluster.server.file("/f").open_count() == 0   # state lost
        reopened = yield from fs.recover(cluster.server_host.address)
        yield from fs.close(stream)
        return reopened

    assert cluster.run(scenario()) == 1
    # Close after recovery balanced the restored count.
    assert cluster.server.file("/f").open_count() == 0


def test_recovery_reflushes_dirty_data():
    """Delayed-write data survives a server crash in the client cache
    and is pushed back during recovery."""
    cluster = make_cluster(1)
    fs = cluster.clients[0].fs

    def scenario():
        stream = yield from fs.open("/log", OpenMode.WRITE | OpenMode.CREATE)
        yield from fs.write(stream, 32 * 1024)
        cluster.server.crash()
        cluster.server.restart()
        before = cluster.server.bytes_written
        yield from fs.recover(cluster.server_host.address)
        flushed = cluster.server.bytes_written - before
        yield from fs.close(stream)
        return flushed

    assert cluster.run(scenario()) >= 32 * 1024


def test_recovery_restores_created_but_unflushed_file():
    cluster = make_cluster(1)
    fs = cluster.clients[0].fs

    def scenario():
        stream = yield from fs.open("/new", OpenMode.WRITE | OpenMode.CREATE)
        yield from fs.write(stream, 4096)
        cluster.server.crash()
        # Simulate total disk-state loss of the *new* entry too.
        cluster.server.files.pop("/new", None)
        cluster.server.restart()
        yield from fs.recover(cluster.server_host.address)
        yield from fs.close(stream)
        info = yield from fs.stat("/new")
        return info["size"]

    assert cluster.run(scenario()) >= 4096


def test_io_during_crash_times_out_then_recovers():
    cluster = make_cluster(1)
    cluster.server.add_file("/data", size=100_000)
    fs = cluster.clients[0].fs

    def scenario():
        stream = yield from fs.open("/data", OpenMode.READ)
        cluster.server.crash()
        try:
            yield from fs.read(stream, 4096)
        except RpcTimeout:
            pass
        else:
            raise AssertionError("read should have timed out")
        cluster.server.restart()
        yield from fs.recover(cluster.server_host.address)
        got = yield from fs.read(stream, 4096)
        yield from fs.close(stream)
        return got

    assert cluster.run(scenario()) == 4096


def test_shared_offset_recovered_from_clients():
    """Cross-host shared streams: the server-side offset is volatile;
    recovery takes the max of the reopeners' views."""
    cluster = make_cluster(2)
    src = cluster.clients[0].fs
    dst = cluster.clients[1].fs
    cluster.server.add_file("/shared", size=100_000)

    def scenario():
        stream = yield from src.open("/shared", OpenMode.READ)
        stream.refcount += 1                     # fork sharing
        state = yield from src.export_stream(stream, cluster.clients[1].address)
        remote = yield from dst.import_stream(state)
        yield from src.read(stream, 10_000)      # shared offset -> 10k
        # Keep the clients' view of the offset for recovery.
        stream.offset = 10_000
        remote.offset = 10_000
        cluster.server.crash()
        cluster.server.restart()
        yield from src.recover(cluster.server_host.address)
        yield from dst.recover(cluster.server_host.address)
        got = yield from dst.read(remote, 5_000)
        from repro.fs.protocol import OffsetOp

        offset = yield from dst.rpc.call(
            remote.server,
            "fs.offset",
            OffsetOp(handle_id=remote.handle_id, stream_id=remote.stream_id),
        )
        return (got, offset)

    got, offset = cluster.run(scenario())
    assert got == 5_000
    assert offset == 15_000


def test_consistency_still_enforced_after_recovery():
    """Post-recovery, concurrent write sharing is still detected."""
    cluster = make_cluster(2)
    fs_a = cluster.clients[0].fs
    fs_b = cluster.clients[1].fs

    def scenario():
        a_stream = yield from fs_a.open("/c", OpenMode.WRITE | OpenMode.CREATE)
        yield from fs_a.write(a_stream, 4096)
        cluster.server.crash()
        cluster.server.restart()
        yield from fs_a.recover(cluster.server_host.address)
        b_stream = yield from fs_b.open("/c", OpenMode.WRITE)
        return (a_stream.cacheable, b_stream.cacheable)

    a_cacheable, b_cacheable = cluster.run(scenario())
    # Writer A re-registered; B's concurrent write-open must come back
    # uncacheable, exactly as without the crash.
    assert b_cacheable is False


def test_epoch_increments_per_crash():
    cluster = make_cluster(1)
    assert cluster.server.epoch == 0
    cluster.server.crash()
    cluster.server.restart()
    cluster.server.crash()
    cluster.server.restart()
    assert cluster.server.epoch == 2
