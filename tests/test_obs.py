"""Tests for the observability layer: tracer queries, spans, metrics,
exporters, and the span-derived migration breakdowns."""

import json
import pathlib
import subprocess
import sys

import pytest

from repro import SpriteCluster
from repro.fs import OpenMode
from repro.migration import (
    EvictionDaemon,
    MigrationRecord,
    MigrationRefused,
    refusal_reasons,
    summarize_records,
)
from repro.obs import (
    ClusterObservability,
    MetricsRegistry,
    MetricsSampler,
    SpanTracer,
    migration_breakdowns,
    render_flame,
    render_span_summary,
    spans_to_chrome_trace,
    trace_to_jsonl,
)
from repro.sim import Simulator, Sleep, Tracer, run_until_complete, spawn

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# Tracer query semantics (satellites 1 and 2)
# ----------------------------------------------------------------------
def _filled_tracer(times):
    tracer = Tracer(enabled=True)
    for t in times:
        tracer.emit(t, "src", "tick", i=t)
    return tracer


def test_between_matches_linear_scan():
    times = [0.0, 0.5, 0.5, 1.0, 2.5, 2.5, 2.5, 3.0, 10.0]
    tracer = _filled_tracer(times)
    for start, end in [(-1, 11), (0.5, 2.5), (0.6, 2.4), (2.5, 2.5),
                       (3.0, 3.0), (4.0, 9.0), (10.0, 99.0), (11.0, 12.0)]:
        expected = [r for r in tracer.records if start <= r.time <= end]
        assert tracer.between(start, end) == expected, (start, end)


def test_between_is_inclusive_and_returns_list():
    tracer = _filled_tracer([1.0, 2.0, 3.0])
    got = tracer.between(1.0, 2.0)
    assert isinstance(got, list)
    assert [r.time for r in got] == [1.0, 2.0]
    assert tracer.between(5.0, 6.0) == []


def test_kinds_filter_applies_at_emit_and_to_sink():
    seen = []
    tracer = Tracer(enabled=True, kinds=["keep"])
    tracer.sink = seen.append
    tracer.emit(1.0, "s", "keep", a=1)
    tracer.emit(2.0, "s", "drop", a=2)
    tracer.emit(3.0, "s", "keep", a=3)
    # Dropped records are neither stored nor sunk; queries see only
    # retained records.
    assert [r.kind for r in tracer.records] == ["keep", "keep"]
    assert [r.kind for r in seen] == ["keep", "keep"]
    assert tracer.of_kind("drop") == []
    assert [r.time for r in tracer.between(0.0, 9.0)] == [1.0, 3.0]
    assert tracer.accepts("keep") and not tracer.accepts("drop")
    assert Tracer().accepts("anything")


def test_disabled_tracer_stores_nothing():
    tracer = Tracer()
    tracer.emit(1.0, "s", "kind")
    assert len(tracer) == 0


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_span_tracer_is_cached_per_tracer():
    tracer = Tracer()
    assert SpanTracer.for_tracer(tracer) is SpanTracer.for_tracer(tracer)
    assert SpanTracer.for_tracer(Tracer()) is not SpanTracer.for_tracer(tracer)


def test_span_start_finish_and_parents():
    spans = SpanTracer(Tracer())
    spans.enabled = True
    root = spans.start("work", "host", t=1.0, pid=7)
    child = root.child("step", t=1.5)
    child.finish(t=2.0)
    root.finish(t=3.0)
    assert root.duration == pytest.approx(2.0)
    assert child.parent_sid == root.sid
    assert spans.children_of(root) == [child]
    assert spans.roots() == [root]
    assert spans.named("step") == [child]
    assert not spans.open


def test_span_record_is_born_finished():
    spans = SpanTracer(Tracer())
    span = spans.record("phase", "host", 1.0, 4.0, why="x")
    assert span.finished and span.duration == pytest.approx(3.0)
    assert not spans.open


def test_span_finish_rejects_negative_duration():
    spans = SpanTracer(Tracer())
    span = spans.start("work", "host", t=5.0)
    with pytest.raises(ValueError):
        span.finish(t=4.0)


def test_spans_mirror_into_tracer_only_when_tracer_enabled():
    tracer = Tracer(enabled=True)
    spans = SpanTracer(tracer)
    spans.record("phase", "host", 0.0, 1.0)
    assert [r.kind for r in tracer.records] == ["span"]
    assert tracer.records[0].detail["dur"] == pytest.approx(1.0)

    silent = Tracer()  # disabled
    spans2 = SpanTracer(silent)
    spans2.record("phase", "host", 0.0, 1.0)
    assert len(silent) == 0
    assert len(spans2) == 1  # span itself is still kept


def test_enabling_tracer_does_not_enable_spans():
    """PR 1's golden fixed-seed trace must not change when only the
    flat tracer is on: span emission needs its own switch."""
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    cluster.tracer.enabled = True
    assert not cluster.managers[cluster.hosts[0].address].spans.enabled
    assert not cluster.hosts[0].rpc.spans.enabled


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_registry_counters_gauges_timers():
    registry = MetricsRegistry()
    registry.counter("mig.started", 1).inc()
    registry.counter("mig.started", 1).inc(2)
    registry.counter("mig.started", 2).inc()
    assert registry.counter("mig.started", 1).value == 3
    assert registry.total("mig.started") == 4
    assert registry.hosts_of("mig.started") == [1, 2]
    registry.gauge("load", 1).set(2.5)
    assert registry.gauge("load", 1).value == 2.5
    registry.timer("freeze", 1).observe(0.1)
    registry.timer("freeze", 2).observe(0.3)
    merged = registry.merged_timer("freeze")
    assert merged.count == 2
    assert merged.total == pytest.approx(0.4)
    snap = registry.snapshot()
    assert snap["counters"]["mig.started@1"] == 3
    assert snap["timers"]["freeze@1"]["count"] == 1
    json.dumps(snap)  # must be JSON-able


def test_sampler_records_time_series():
    sim = Simulator()
    registry = MetricsRegistry()
    sampler = MetricsSampler(sim, registry, period=1.0)
    readings = iter(range(100))
    sampler.add_probe("val", None, lambda: next(readings))
    sampler.start()
    sim.run(until=3.5)
    points = registry.series[("val", None)]
    assert [t for t, _v in points] == pytest.approx([1.0, 2.0, 3.0])
    assert [v for _t, v in points] == [0.0, 1.0, 2.0]
    assert sampler.samples_taken == 3
    with pytest.raises(ValueError):
        MetricsSampler(sim, registry, period=0.0)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _sample_spans():
    spans = SpanTracer(Tracer())
    root = spans.record("mig.migrate", "mig:ws0", 0.0, 1.0, pid=1,
                        src=2, dst=3, reason="test")
    spans.record("mig.negotiate", "mig:ws0", 0.0, 0.25, parent=root)
    spans.record("mig.freeze", "mig:ws0", 0.25, 1.0, parent=root)
    spans.record("rpc.call", "rpc:ws1", 0.1, 0.2, service="x")
    return spans


def test_chrome_trace_shape(tmp_path):
    spans = _sample_spans()
    path = tmp_path / "trace_chrome.json"
    doc = spans_to_chrome_trace(spans.finished, path)
    reloaded = json.loads(path.read_text())
    assert reloaded == doc
    events = doc["traceEvents"]
    assert all("ph" in e and "ts" in e and "pid" in e for e in events)
    spans_x = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert len(spans_x) == 4
    assert {m["args"]["name"] for m in metas} == {"mig:ws0", "rpc:ws1"}
    root_event = next(e for e in spans_x if e["name"] == "mig.migrate")
    assert root_event["ts"] == 0 and root_event["dur"] == pytest.approx(1e6)
    # Children reference the root's span id.
    child = next(e for e in spans_x if e["name"] == "mig.negotiate")
    assert child["args"]["parent"] == root_event["args"]["sid"]


def test_chrome_trace_empty(tmp_path):
    path = tmp_path / "empty.json"
    doc = spans_to_chrome_trace([], path)
    assert doc == {"traceEvents": [], "displayTimeUnit": "ms"}
    assert json.loads(path.read_text()) == doc


def test_chrome_trace_skips_unfinished_spans():
    spans = SpanTracer(Tracer())
    spans.enabled = True
    done = spans.start("rpc.call", "rpc:ws0", t=0.0)
    done.finish(1.0)
    live = spans.start("mig.migrate", "mig:ws0", t=0.5)  # open at quiesce
    doc = spans_to_chrome_trace(spans.finished + list(spans.open.values()))
    assert not live.finished
    names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
    assert names == ["rpc.call"]
    # And the unfinished span never reaches .finished either.
    assert [s.name for s in spans.finished] == ["rpc.call"]


def test_chrome_trace_overlapping_same_name_spans_one_host():
    spans = SpanTracer(Tracer())
    first = spans.record("rpc.call", "rpc:ws0", 0.0, 2.0, service="a")
    second = spans.record("rpc.call", "rpc:ws0", 1.0, 3.0, service="b")
    doc = spans_to_chrome_trace(spans.finished)
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    # One process row, both complete events preserved with distinct
    # sids — overlap must not merge or drop either event.
    assert len(metas) == 1 and len(xs) == 2
    assert {e["pid"] for e in xs} == {metas[0]["pid"]}
    assert {e["args"]["sid"] for e in xs} == {first.sid, second.sid}
    assert [e["ts"] for e in xs] == [0.0, 1e6]
    assert all(e["dur"] == pytest.approx(2e6) for e in xs)


def test_jsonl_roundtrip(tmp_path):
    tracer = Tracer(enabled=True)
    tracer.emit(1.0, "s", "k", n=1, obj=object())
    path = tmp_path / "trace.jsonl"
    trace_to_jsonl(tracer.records, path)
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    row = json.loads(lines[0])
    assert row["time"] == 1.0 and row["kind"] == "k"
    assert isinstance(row["detail"]["obj"], str)  # stringified safely


def test_text_views_render():
    spans = _sample_spans()
    summary = render_span_summary(spans.finished)
    assert "mig.migrate" in summary and "count" in summary
    flame = render_flame(spans.finished)
    assert flame.index("mig.migrate") < flame.index("mig.negotiate")
    assert "  mig.negotiate" in flame  # indented under the root
    assert render_flame([]) == "(no finished spans)"


# ----------------------------------------------------------------------
# End-to-end: spans through a real migration
# ----------------------------------------------------------------------
def _migrate_once(observed=True):
    cluster = SpriteCluster(workstations=3, start_daemons=False)
    obs = cluster.observability(trace=True) if observed else None
    src, dst = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        fd = yield from proc.open("/obs-test", OpenMode.WRITE | OpenMode.CREATE)
        yield from proc.compute(2.0)
        yield from proc.close(fd)
        return proc.pcb.current

    pcb, _ = src.spawn_process(job, name="job")
    records = []

    def driver():
        yield Sleep(0.5)
        manager = cluster.managers[pcb.current]
        record = yield from manager.migrate(pcb, dst.address, reason="manual")
        records.append(record)

    spawn(cluster.sim, driver(), name="driver")
    cluster.run_until_complete(pcb.task)
    return cluster, obs, records[0]


def test_migration_spans_partition_total_time():
    _cluster, obs, record = _migrate_once()
    rows = migration_breakdowns(obs.spans.finished)
    assert len(rows) == 1
    row = rows[0]
    assert row["pid"] == record.pid
    assert row["source"] == record.source
    assert row["target"] == record.target
    assert row["reason"] == record.reason
    assert not row["refused"]
    # The acceptance criterion: phase durations sum exactly to the
    # record's total, and the root's extent equals it too.
    assert row["total"] == pytest.approx(record.total_time, abs=1e-12)
    assert row["phase_sum"] == pytest.approx(record.total_time, rel=1e-9)
    # The frozen interval splits at the commit point: freeze covers
    # park -> commit, commit covers the post-commit duties.
    assert row["freeze"] + row["commit"] == pytest.approx(
        record.freeze_time, abs=1e-12
    )
    assert row["commit"] == pytest.approx(record.commit_time, abs=1e-12)
    assert record.commit_started > 0.0
    assert row["started"] == record.started
    assert row["ended"] == record.ended
    # Lifecycle sub-steps exist under the root.
    names = {s.name for s in obs.spans.finished}
    assert {"mig.migrate", "mig.negotiate", "mig.wait_safe_point",
            "mig.freeze", "mig.commit", "mig.commit_rpc", "mig.state_pack",
            "mig.streams", "mig.install", "rpc.call", "rpc.serve"} <= names


def test_migration_spans_are_deterministic():
    _c1, obs1, _r1 = _migrate_once()
    _c2, obs2, _r2 = _migrate_once()
    key = lambda spans: [(s.name, s.start, s.end) for s in spans.finished]
    assert key(obs1.spans) == key(obs2.spans)


def test_migration_metrics_counters_and_timers():
    _cluster, obs, record = _migrate_once()
    registry = obs.registry
    assert registry.counter("mig.started", record.source).value == 1
    assert registry.counter("mig.completed", record.source).value == 1
    assert registry.total("mig.refused") == 0
    freeze = registry.timer("mig.freeze", record.source).histogram
    assert freeze.count == 1
    assert freeze.total == pytest.approx(record.freeze_time)
    rpc = obs.rpc_by_service()
    assert rpc["mig.install"]["calls"] == 1
    assert rpc["mig.negotiate"]["served"] == 1
    assert obs.lan_by_kind()["rpc-request"] > 0
    json.dumps(obs.snapshot())


def test_unobserved_cluster_collects_nothing():
    cluster, _obs, _record = _migrate_once(observed=False)
    manager = cluster.managers[cluster.hosts[0].address]
    assert manager.obs is None
    assert not manager.spans.enabled
    assert len(manager.spans) == 0
    assert cluster.hosts[0].rpc.stats is None
    assert cluster.lan.kind_bytes is None
    assert len(cluster.tracer) == 0


def test_refused_migration_gets_refused_root_span():
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    obs = cluster.observability()
    src, dst = cluster.hosts[0], cluster.hosts[1]
    cluster.managers[dst.address].accept_hook = lambda args: False

    def job(proc):
        yield from proc.compute(2.0)

    pcb, _ = src.spawn_process(job, name="job")
    failures = []

    def driver():
        yield Sleep(0.2)
        try:
            yield from cluster.managers[src.address].migrate(pcb, dst.address)
        except MigrationRefused as err:
            failures.append(err)

    spawn(cluster.sim, driver(), name="driver")
    cluster.run_until_complete(pcb.task)
    assert failures
    roots = obs.spans.named("mig.migrate")
    assert len(roots) == 1
    assert roots[0].attrs["refused"] is True
    assert roots[0].finished
    assert obs.registry.total("mig.refused") == 1
    assert obs.registry.total("mig.completed") == 0
    reasons = refusal_reasons(cluster.migration_records())
    assert reasons == {"host not accepting foreign work": 1}


def test_eviction_span_and_metrics():
    cluster, obs, record = _migrate_once()
    dst_manager = cluster.managers[record.target]
    daemon = EvictionDaemon(dst_manager, start=False)
    # The job already finished, so re-plant a foreign process: migrate a
    # fresh one over, then reclaim the host.
    src, dst = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(5.0)

    pcb, _ = src.spawn_process(job, name="guest")

    def driver():
        yield Sleep(0.2)
        yield from cluster.managers[src.address].migrate(pcb, dst.address)
        yield Sleep(0.5)
        yield from daemon.evict_now()

    run_until_complete(cluster.sim, driver(), name="driver")
    assert len(daemon.events) == 1
    event = daemon.events[0]
    assert event.victims == 1
    reclaim = obs.spans.named("evict.reclaim")
    assert len(reclaim) == 1
    assert reclaim[0].duration == pytest.approx(event.reclaim_seconds)
    assert obs.registry.counter("evict.events", dst.address).value == 1
    assert obs.registry.counter("evict.victims", dst.address).value == 1


# ----------------------------------------------------------------------
# migration/stats edge cases (satellite 4)
# ----------------------------------------------------------------------
def _record(refused=False, why=None, vm=None, total=1.0, freeze=0.5):
    record = MigrationRecord(
        pid=1, name="p", source=1, target=2, reason="manual",
        policy="flush", started=0.0, ended=total,
        freeze_started=total - freeze, freeze_ended=total,
        refused=refused, vm=vm,
    )
    if why is not None:
        record.detail["refusal"] = why
    return record


def test_summarize_records_all_refused():
    records = [_record(refused=True, why="no"), _record(refused=True)]
    summary = summarize_records(records)
    assert summary == {"count": 0, "refused": 2}


def test_summarize_records_vm_none():
    summary = summarize_records([_record(vm=None)])
    assert summary["count"] == 1
    assert summary["vm_bytes_total"] == 0.0
    assert summary["mean_total_s"] == pytest.approx(1.0)
    assert summary["mean_freeze_s"] == pytest.approx(0.5)


def test_refusal_reasons_counts_and_defaults():
    records = [
        _record(refused=True, why="version mismatch"),
        _record(refused=True, why="version mismatch"),
        _record(refused=True),        # no reason recorded
        _record(refused=False),       # ignored
    ]
    assert refusal_reasons(records) == {
        "version mismatch": 2, "unspecified": 1,
    }


# ----------------------------------------------------------------------
# Tooling (satellites 3 and 6)
# ----------------------------------------------------------------------
def test_trace_guard_check_passes_on_tree():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_trace_guards.py")],
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_chrome_trace_validator(tmp_path):
    spans = _sample_spans()
    good = tmp_path / "good.json"
    spans_to_chrome_trace(spans.finished, good)
    validator = REPO_ROOT / "tools" / "validate_chrome_trace.py"
    ok = subprocess.run([sys.executable, str(validator), str(good)],
                        capture_output=True, text=True)
    assert ok.returncode == 0, ok.stderr
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [{"name": "x", "ph": "X"}]}))
    fail = subprocess.run([sys.executable, str(validator), str(bad)],
                          capture_output=True, text=True)
    assert fail.returncode == 1
