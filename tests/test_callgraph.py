"""Tests for the interprocedural call graph and dataflow engine.

Covers the resolution edge cases the rules depend on — subclass method
dispatch, ``functools.partial`` wrapping, string-name handler lookup via
``getattr``, recursion cycles — plus a golden dead-code report over a
fixture package and unit tests for the summary fixpoint engine.
"""

from __future__ import annotations

import pathlib
import textwrap

from repro.analysis.core import Tree
from repro.analysis.dataflow import exception_escapes, fixpoint, tainted_returns

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def graph_of(tmp_path, files):
    root = tmp_path / "tree"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return Tree.load(root).callgraph()


def fn(graph, rel, qualname):
    node = graph.functions.get((rel, qualname))
    assert node is not None, f"no function {rel}::{qualname}"
    return node


def callee_keys(graph, caller):
    return sorted(
        edge.callee.key for edge in graph.edges_out(caller)
        if edge.kind == "call"
    )


# ----------------------------------------------------------------------
# method resolution through subclasses
# ----------------------------------------------------------------------
def test_self_call_resolves_base_impl_and_subclass_overrides(tmp_path):
    graph = graph_of(
        tmp_path,
        {
            "base.py": """\
            class Server:
                def handle(self):
                    return self.dispatch()

                def dispatch(self):
                    return "base"
            """,
            "sub.py": """\
            from .base import Server


            class FsServer(Server):
                def dispatch(self):
                    return "fs"
            """,
        },
    )
    handler = fn(graph, "base.py", "Server.handle")
    assert callee_keys(graph, handler) == [
        ("base.py", "Server.dispatch"),
        ("sub.py", "FsServer.dispatch"),
    ]


def test_subclass_inherits_base_method(tmp_path):
    # a call on a subclass instance with no local override resolves to
    # the nearest ancestor implementation
    graph = graph_of(
        tmp_path,
        {
            "mod.py": """\
            class Base:
                def step(self):
                    return 1


            class Mid(Base):
                pass


            class Leaf(Mid):
                def run(self):
                    return self.step()
            """,
        },
    )
    run = fn(graph, "mod.py", "Leaf.run")
    assert callee_keys(graph, run) == [("mod.py", "Base.step")]


def test_constructor_call_edges_to_init(tmp_path):
    graph = graph_of(
        tmp_path,
        {
            "mod.py": """\
            class Widget:
                def __init__(self, size):
                    self.size = size


            def make():
                return Widget(3)
            """,
        },
    )
    make = fn(graph, "mod.py", "make")
    assert callee_keys(graph, make) == [("mod.py", "Widget.__init__")]
    klass = graph.classes["Widget"]
    assert klass.rel == "mod.py"


# ----------------------------------------------------------------------
# partial-wrapped callables and callback references
# ----------------------------------------------------------------------
def test_partial_first_arg_gets_ref_edge(tmp_path):
    graph = graph_of(
        tmp_path,
        {
            "mod.py": """\
            from functools import partial


            def job(arg):
                return arg


            def install(pool):
                pool.submit(partial(job, 7))
            """,
        },
    )
    install = fn(graph, "mod.py", "install")
    refs = [e for e in graph.edges_out(install) if e.kind == "ref"]
    assert {e.callee.key for e in refs} == {("mod.py", "job")}
    assert fn(graph, "mod.py", "job") not in graph.unreferenced()


def test_callback_argument_gets_ref_edge(tmp_path):
    graph = graph_of(
        tmp_path,
        {
            "mod.py": """\
            def on_done(result):
                return result


            def start(queue):
                queue.put(on_done)
            """,
        },
    )
    start = fn(graph, "mod.py", "start")
    refs = [e.callee.key for e in graph.edges_out(start) if e.kind == "ref"]
    assert refs == [("mod.py", "on_done")]


# ----------------------------------------------------------------------
# handlers registered by string name
# ----------------------------------------------------------------------
def test_getattr_string_literal_resolves_method(tmp_path):
    graph = graph_of(
        tmp_path,
        {
            "mod.py": """\
            class Server:
                def _rpc_read(self, req):
                    return req

                def lookup(self, op):
                    return getattr(self, "_rpc_read")
            """,
        },
    )
    lookup = fn(graph, "mod.py", "Server.lookup")
    refs = [e.callee.key for e in graph.edges_out(lookup) if e.kind == "ref"]
    assert ("mod.py", "Server._rpc_read") in refs
    assert fn(graph, "mod.py", "Server._rpc_read") not in graph.unreferenced()


# ----------------------------------------------------------------------
# cycles
# ----------------------------------------------------------------------
def test_recursion_cycle_terminates_and_keeps_edges(tmp_path):
    graph = graph_of(
        tmp_path,
        {
            "mod.py": """\
            def ping(n):
                if n:
                    return pong(n - 1)
                return 0


            def pong(n):
                return ping(n)


            def direct(n):
                return direct(n - 1) if n else 0
            """,
        },
    )
    ping = fn(graph, "mod.py", "ping")
    pong = fn(graph, "mod.py", "pong")
    direct = fn(graph, "mod.py", "direct")
    assert callee_keys(graph, ping) == [pong.key]
    assert callee_keys(graph, pong) == [ping.key]
    assert callee_keys(graph, direct) == [direct.key]
    # reachability over a cycle terminates and includes both members
    keys = {f.key for f in graph.reachable_from([ping])}
    assert keys == {ping.key, pong.key}


def test_exception_escapes_converges_on_cycle(tmp_path):
    graph = graph_of(
        tmp_path,
        {
            "mod.py": """\
            def a(n):
                if n < 0:
                    raise ValueError("negative")
                return b(n - 1)


            def b(n):
                return a(n)
            """,
        },
    )
    escapes = exception_escapes(graph)
    assert set(escapes[("mod.py", "a")]) == {"ValueError"}
    assert set(escapes[("mod.py", "b")]) == {"ValueError"}
    assert escapes[("mod.py", "b")]["ValueError"] == ("mod.py", 3)


# ----------------------------------------------------------------------
# import / re-export resolution
# ----------------------------------------------------------------------
def test_cross_module_call_through_package_reexport(tmp_path):
    graph = graph_of(
        tmp_path,
        {
            "pkg/__init__.py": "from .impl import helper\n",
            "pkg/impl.py": "def helper():\n    return 1\n",
            "use.py": """\
            from .pkg import helper


            def caller():
                return helper()
            """,
        },
    )
    caller = fn(graph, "use.py", "caller")
    assert callee_keys(graph, caller) == [("pkg/impl.py", "helper")]


def test_module_alias_attribute_call(tmp_path):
    graph = graph_of(
        tmp_path,
        {
            "util.py": "def clamp(x):\n    return x\n",
            "use.py": """\
            from . import util


            def caller(x):
                return util.clamp(x)
            """,
        },
    )
    caller = fn(graph, "use.py", "caller")
    assert callee_keys(graph, caller) == [("util.py", "clamp")]


# ----------------------------------------------------------------------
# golden dead-code report over a fixture package
# ----------------------------------------------------------------------
_DEADCODE_FIXTURE = {
    "pkg/__init__.py": "from .api import entry\n\n__all__ = [\"entry\"]\n",
    "pkg/api.py": """\
    from .work import used_helper


    def entry():
        return used_helper()


    def orphan_api():
        return None
    """,
    "pkg/work.py": """\
    import functools


    def used_helper():
        return 1


    def orphan_worker():
        return 2


    @functools.lru_cache()
    def decorated_orphan():
        return 3


    def __special__():
        return 4
    """,
}


def test_golden_dead_code_report(tmp_path):
    graph = graph_of(tmp_path, _DEADCODE_FIXTURE)
    # exact golden: orphans only — `entry` is exported via __all__,
    # `used_helper` has an in-edge, decorated and dunder defs are
    # exempt by policy.
    assert [f"{f.rel}::{f.qualname}" for f in graph.unreferenced()] == [
        "pkg/api.py::orphan_api",
        "pkg/work.py::orphan_worker",
    ]
    report = graph.render_report()
    assert "unreferenced functions (2)" in report
    assert "pkg/api.py:8 orphan_api" in report
    assert "pkg/work.py:8 orphan_worker" in report


def test_stats_counts(tmp_path):
    graph = graph_of(tmp_path, _DEADCODE_FIXTURE)
    stats = graph.stats()
    assert stats["modules"] == 3
    assert stats["functions"] == 6
    assert stats["unreferenced"] == 2
    assert stats["call_edges"] >= 1


# ----------------------------------------------------------------------
# dataflow engine unit tests
# ----------------------------------------------------------------------
def test_fixpoint_reenqueues_callers_until_stable(tmp_path):
    graph = graph_of(
        tmp_path,
        {
            "mod.py": """\
            def leaf():
                return 1


            def mid():
                return leaf()


            def top():
                return mid()
            """,
        },
    )
    # toy analysis: a function's summary is the set of leaf-function
    # names transitively reachable from it
    def transfer(node, summary_of):
        names = set()
        for edge in graph.edges_out(node):
            if edge.kind != "call":
                continue
            names.add(edge.callee.name)
            names |= summary_of(edge.callee)
        return names

    result = fixpoint(graph, initial=lambda fn: set(), transfer=transfer)
    assert result[("mod.py", "leaf")] == set()
    assert result[("mod.py", "mid")] == {"leaf"}
    assert result[("mod.py", "top")] == {"mid", "leaf"}


def test_exception_escapes_filters_caught_and_propagates(tmp_path):
    graph = graph_of(
        tmp_path,
        {
            "mod.py": """\
            def inner():
                raise KeyError("missing")


            def swallows():
                try:
                    inner()
                except KeyError:
                    return None


            def leaks():
                inner()


            def reraises():
                try:
                    inner()
                    raise ValueError("shadowed")
                except KeyError:
                    raise
            """,
        },
    )
    escapes = exception_escapes(graph)
    assert set(escapes[("mod.py", "inner")]) == {"KeyError"}
    assert escapes[("mod.py", "swallows")] == {}
    assert set(escapes[("mod.py", "leaks")]) == {"KeyError"}
    # ValueError is caught by nothing (handler names KeyError only) and
    # the bare raise re-raises the caught KeyError
    assert set(escapes[("mod.py", "reraises")]) == {"KeyError", "ValueError"}


def test_tainted_returns_transitive(tmp_path):
    graph = graph_of(
        tmp_path,
        {
            "mod.py": """\
            import time


            def source():
                return time.time()


            def launder():
                value = source()
                return value


            def clean():
                return 42
            """,
        },
    )
    tainted = tainted_returns(graph, sources={"time.time"})
    assert ("mod.py", "source") in tainted
    assert ("mod.py", "launder") in tainted
    assert ("mod.py", "clean") not in tainted


# ----------------------------------------------------------------------
# live tree sanity
# ----------------------------------------------------------------------
def test_live_tree_graph_builds_and_is_well_formed():
    tree = Tree.load(REPO_ROOT / "src" / "repro")
    graph = tree.callgraph()
    stats = graph.stats()
    assert stats["functions"] > 500
    assert stats["edges"] > stats["functions"]
    # every edge endpoint is a registered function
    for edge in graph.edges:
        assert edge.callee.key in graph.functions
        if edge.caller is not None:
            assert edge.caller.key in graph.functions
    # the graph is cached on the tree
    assert tree.callgraph() is graph


def test_dead_code_baseline_in_sync():
    """tools/deadcode_baseline.json must match the live report exactly.

    CI diffs the two; a new unreferenced function means either delete it
    or add it to the baseline with a reviewed justification.
    """
    import json

    baseline = json.loads(
        (REPO_ROOT / "tools" / "deadcode_baseline.json").read_text()
    )
    graph = Tree.load(REPO_ROOT / "src" / "repro").callgraph()
    live = [f"{f.rel}::{f.qualname}" for f in graph.unreferenced()]
    assert live == baseline["unreferenced"]
