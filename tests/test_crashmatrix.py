"""The migration-transaction crash matrix: exhaustiveness, cleanliness,
byte-identical determinism."""

from repro.faults import (
    MATRIX_KINDS,
    MATRIX_VICTIMS,
    matrix_cells,
    run_cell,
    run_matrix,
)
from repro.migration import TXN_STEPS


def test_matrix_enumerates_every_cell_exactly_once():
    cells = matrix_cells()
    assert len(cells) == len(TXN_STEPS) * len(MATRIX_VICTIMS) * len(MATRIX_KINDS)
    assert len(cells) == 132
    assert len(set(cells)) == len(cells)


def test_full_crash_matrix_is_clean():
    """Every cell: fault fired at its armed step, the in-flight audit
    held at that instant, and the quiesced cluster leaked nothing."""
    report = run_matrix(seed=0)
    assert len(report.cells) == 132
    dirty = [
        f"{cell}: {cell.in_flight_violations + cell.violations}"
        for cell in report.cells
        if not cell.clean
    ]
    assert report.clean, "\n".join(dirty)
    # Each fault actually fired at its boundary (no vacuous cells).
    assert all(cell.fired_at > 0 for cell in report.cells)
    # The protocol really does hold inactive lease-held copies at the
    # target mid-transfer... and every one of them drained by quiesce.
    assert any(cell.inactive_at_fault > 0 for cell in report.cells)
    assert all(cell.inactive_at_quiesce == 0 for cell in report.cells)
    # Post-commit faults must not undo the migration; pre-install source
    # crashes must abandon it.  Spot-check the extremes of the ordering.
    by_key = {(c.step, c.victim, c.kind): c for c in report.cells}
    assert by_key[("closed", "source", "crash")].outcome == "abandoned"
    assert by_key[("negotiated", "source", "crash")].outcome == "abandoned"
    assert by_key[("home_updated", "target", "partition")].outcome == "migrated"
    # A flaky network (duplication, reordering, corruption) slows the
    # transfer but never loses or doubles it: exactly-once RPC absorbs it.
    assert by_key[("negotiated", "target", "flaky")].outcome == "migrated"
    assert by_key[("committed", "source", "flaky")].outcome == "migrated"


def test_matrix_fixed_seed_is_byte_identical():
    """The golden determinism contract: same seed + same cells => the
    per-cell traces (and so the matrix fingerprint) are byte-identical."""
    first = run_matrix(seed=3, max_cells=12)
    second = run_matrix(seed=3, max_cells=12)
    assert len(first.cells) == 12
    assert first.fingerprint == second.fingerprint
    assert [c.to_dict() for c in first.cells] == [
        c.to_dict() for c in second.cells
    ]


def test_matrix_subset_keeps_coverage_breadth():
    """A bounded run strides the full ordering, so every victim and
    every fault kind stay represented even in small CI smokes."""
    report = run_matrix(seed=0, max_cells=12)
    assert len(report.cells) == 12
    assert {c.victim for c in report.cells} == set(MATRIX_VICTIMS)
    assert {c.kind for c in report.cells} == set(MATRIX_KINDS)
    assert report.clean


def test_single_cell_reports_inactive_copy_under_lease():
    """Crashing the source right after mig.install leaves the target's
    inactive copy under its lease: counted at the fault instant, reaped
    (not activated) by quiesce."""
    cell = run_cell("shipped", "source", "crash")
    assert cell.clean
    assert cell.inactive_at_fault == 1
    assert cell.inactive_at_quiesce == 0
    assert cell.outcome == "abandoned"
