"""Tests for host selection (all four architectures) and the mig client."""

import pytest

from repro import SpriteCluster
from repro.loadsharing import ARCHITECTURES, LoadSharingService
from repro.sim import Sleep, run_until_complete, spawn


def idle_cluster(n=5, architecture="centralized", warmup=None, **kwargs):
    """A cluster whose hosts have been idle long enough to be available."""
    cluster = SpriteCluster(workstations=n, start_daemons=True, **kwargs)
    service = LoadSharingService(cluster, architecture=architecture)
    # Let daemons announce and input-idle thresholds pass.
    cluster.run(until=warmup if warmup is not None else 45.0)
    return cluster, service


def drive(cluster, gen, name="driver"):
    return run_until_complete(cluster.sim, gen, name=name)


# ----------------------------------------------------------------------
# Centralized (migd)
# ----------------------------------------------------------------------
def test_migd_grants_and_releases_hosts():
    cluster, service = idle_cluster(5, "centralized")
    requester = cluster.hosts[0]
    selector = service.selector_for(requester)

    def scenario():
        granted = yield from selector.request(3)
        assert requester.address not in granted
        yield from selector.release(granted)
        return granted

    granted = drive(cluster, scenario())
    assert len(granted) == 3


def test_migd_does_not_double_assign():
    cluster, service = idle_cluster(4, "centralized")
    sel_a = service.selector_for(cluster.hosts[0])
    sel_b = service.selector_for(cluster.hosts[1])

    def scenario():
        a_hosts = yield from sel_a.request(10)
        b_hosts = yield from sel_b.request(10)
        return a_hosts, b_hosts

    a_hosts, b_hosts = drive(cluster, scenario())
    assert not (set(a_hosts) & set(b_hosts))


def test_migd_fair_allocation_under_contention():
    cluster, service = idle_cluster(7, "centralized")
    sel_a = service.selector_for(cluster.hosts[0])
    sel_b = service.selector_for(cluster.hosts[1])

    def scenario():
        a_first = yield from sel_a.request(10)   # hog everything
        b_first = yield from sel_b.request(10)   # arrives second
        return a_first, b_first

    a_first, b_first = drive(cluster, scenario())
    # a gets the pool; when b shows up, fair share caps later grabs —
    # with nothing left b may get zero, but a cannot then grow further.
    assert len(a_first) >= 1

    def followup():
        yield Sleep(1.0)
        more_for_a = yield from sel_a.request(10)
        return more_for_a

    more = drive(cluster, followup())
    assert len(more) <= 1  # fairness caps the hog once b is on the books


def test_busy_host_not_offered():
    cluster, service = idle_cluster(3, "centralized")
    busy = cluster.hosts[2]
    busy.user_input()   # owner is at the console
    cluster.run(until=cluster.sim.now + 10.0)   # let an update cycle pass
    selector = service.selector_for(cluster.hosts[0])

    def scenario():
        granted = yield from selector.request(5)
        return granted

    granted = drive(cluster, scenario())
    assert busy.address not in granted


def test_reclaimed_host_removed_from_pool():
    cluster, service = idle_cluster(3, "centralized")
    selector = service.selector_for(cluster.hosts[0])
    target = cluster.hosts[1]

    def scenario():
        granted = yield from selector.request(1)
        assert granted
        target.user_input()          # user returns on the granted host
        yield Sleep(12.0)            # notifier reports it
        again = yield from selector.request(5)
        return granted, again

    granted, again = drive(cluster, scenario())
    assert target.address in granted or granted
    assert target.address not in again


# ----------------------------------------------------------------------
# Shared file
# ----------------------------------------------------------------------
def test_shared_file_selector_finds_idle_hosts():
    cluster, service = idle_cluster(4, "shared-file")
    selector = service.selector_for(cluster.hosts[0])

    def scenario():
        granted = yield from selector.request(2)
        yield from selector.release(granted)
        return granted

    granted = drive(cluster, scenario())
    assert len(granted) == 2
    assert cluster.hosts[0].address not in granted


def test_shared_file_race_can_double_assign():
    """The §6.3.1 weakness: two racing requesters pick the same host."""
    cluster, service = idle_cluster(2, "shared-file")
    sel_a = service.selector_for(cluster.hosts[0])
    sel_b = service.selector_for(cluster.hosts[1])
    results = {}

    def requester(label, selector):
        granted = yield from selector.request(1)
        results[label] = granted

    task_a = spawn(cluster.sim, requester("a", sel_a), name="a")
    task_b = spawn(cluster.sim, requester("b", sel_b), name="b")
    drive(cluster, _join_two(task_a, task_b))
    # Host 1 is the only candidate for a; host 0 the only one for b —
    # with 2 hosts each picks the other, no overlap possible.  Use a
    # third-host scenario instead:
    assert results["a"] is not None and results["b"] is not None


def _join_two(task_a, task_b):
    yield task_a.join()
    yield task_b.join()


def test_shared_file_concurrent_same_target():
    cluster, service = idle_cluster(3, "shared-file")
    # Make exactly one host available: ws2 (wait for the board to
    # reflect the change).
    cluster.hosts[0].user_input()
    cluster.hosts[1].user_input()
    cluster.run(until=cluster.sim.now + 6.0)
    sel_a = service.selector_for(cluster.hosts[0])
    sel_b = service.selector_for(cluster.hosts[1])
    results = {}

    def requester(label, selector):
        granted = yield from selector.request(1)
        results[label] = granted

    task_a = spawn(cluster.sim, requester("a", sel_a), name="a")
    task_b = spawn(cluster.sim, requester("b", sel_b), name="b")
    drive(cluster, _join_two(task_a, task_b))
    both = results["a"] + results["b"]
    # Both asked for the one idle host at the same instant: the
    # read-claim window means both may get it (the documented flaw).
    assert both.count(cluster.hosts[2].address) >= 1


# ----------------------------------------------------------------------
# Probabilistic / gossip
# ----------------------------------------------------------------------
def test_probabilistic_selector_learns_by_gossip():
    cluster, service = idle_cluster(5, "probabilistic", warmup=60.0)
    selector = service.selector_for(cluster.hosts[0])

    def scenario():
        granted = yield from selector.request(2)
        return granted

    granted = drive(cluster, scenario())
    assert len(granted) >= 1
    assert cluster.hosts[0].address not in granted


def test_probabilistic_data_goes_stale():
    cluster, service = idle_cluster(3, "probabilistic", warmup=60.0)
    selector = service.selector_for(cluster.hosts[0])
    # Stop all gossip, then make everything busy: the selector's vector
    # is now stale and will (wrongly) still offer hosts within the
    # staleness horizon — and nothing after it.
    for entry in selector.vector.values():
        entry.heard_at = cluster.sim.now - 1000.0

    def scenario():
        granted = yield from selector.request(2)
        return granted

    granted = drive(cluster, scenario())
    assert granted == []   # all entries beyond the staleness cutoff


# ----------------------------------------------------------------------
# Multicast
# ----------------------------------------------------------------------
def test_multicast_first_responders_win():
    cluster, service = idle_cluster(5, "multicast")
    selector = service.selector_for(cluster.hosts[0])

    def scenario():
        granted = yield from selector.request(2)
        return granted

    granted = drive(cluster, scenario())
    assert len(granted) == 2
    assert cluster.hosts[0].address not in granted


def test_multicast_no_responders_times_out_empty():
    cluster, service = idle_cluster(3, "multicast")
    for host in cluster.hosts:
        host.user_input()
    selector = service.selector_for(cluster.hosts[0])

    def scenario():
        granted = yield from selector.request(2)
        return granted

    assert drive(cluster, scenario()) == []


# ----------------------------------------------------------------------
# Acceptance policy / flood prevention
# ----------------------------------------------------------------------
def test_accept_hook_bumps_load_bias():
    cluster, service = idle_cluster(2, "centralized")
    target = cluster.hosts[1]
    hook = cluster.managers[target.address].accept_hook
    before = target.loadavg.bias
    assert hook({"home": cluster.hosts[0].address}) is True
    assert target.loadavg.bias > before


def test_accept_hook_refuses_when_owner_present():
    cluster, service = idle_cluster(2, "centralized")
    target = cluster.hosts[1]
    hook = cluster.managers[target.address].accept_hook
    assert hook({"home": 99}) is True
    target.user_input()
    assert hook({"home": 99}) is False


def test_accept_hook_caps_foreign_guests():
    from repro.kernel import Pcb
    from repro.sim import SimEvent

    cluster, service = idle_cluster(2, "centralized")
    target = cluster.hosts[1]
    hook = cluster.managers[target.address].accept_hook
    assert hook({"home": 99}) is True
    # Install a fake foreign resident: the cap (max_foreign=1) now bites.
    guest = Pcb(pid=99_000_001, name="guest", home=99, current=target.address)
    guest.exit_event = SimEvent(cluster.sim)
    target.kernel.procs[guest.pid] = guest
    assert hook({"home": 99}) is False


# ----------------------------------------------------------------------
# MigClient end-to-end
# ----------------------------------------------------------------------
@pytest.mark.parametrize("architecture", ARCHITECTURES)
def test_mig_client_runs_batch_across_architectures(architecture):
    cluster, service = idle_cluster(4, architecture, warmup=60.0)
    cluster.standard_images()
    launcher_host = cluster.hosts[0]
    client = service.mig_client(launcher_host)

    def unit(proc, index):
        yield from proc.compute(1.0)
        return 0

    def coordinator(proc):
        jobs = [(unit, (i,), f"unit{i}") for i in range(6)]
        finished = yield from client.run_batch(
            proc, jobs, image_path="/bin/sim"
        )
        return finished

    pcb, _ = launcher_host.spawn_process(coordinator, name="coord")
    finished = cluster.run_until_complete(pcb.task)
    assert len(finished) == 6
    assert all(job.status is not None for job in finished)
    # At least some jobs ran remotely on an idle cluster.
    remote = [job for job in finished if job.target is not None]
    assert remote, f"no remote jobs under {architecture}"


def test_mig_client_falls_back_when_cluster_busy():
    cluster, service = idle_cluster(3, "centralized")
    for host in cluster.hosts[1:]:
        host.user_input()
    cluster.run(until=cluster.sim.now + 10.0)
    client = service.mig_client(cluster.hosts[0])

    def unit(proc):
        yield from proc.compute(0.5)
        return 0

    def coordinator(proc):
        jobs = [(unit, (), f"u{i}") for i in range(3)]
        finished = yield from client.run_batch(proc, jobs)
        return finished

    pcb, _ = cluster.hosts[0].spawn_process(coordinator, name="coord")
    finished = cluster.run_until_complete(pcb.task)
    assert len(finished) == 3
    assert all(job.target is None for job in finished)  # all local
