"""Tests for pseudo-devices, backing files, and stream migration."""

import pytest

from repro.fs import BackingFile, BadStream, OpenMode, PdevMaster
from repro.sim import spawn

from .helpers import MiniCluster


def attach_pdev(cluster, host, path, name="svc"):
    """Create a master on ``host`` and register its name at the server."""
    master = PdevMaster(cluster.sim, name)
    host.pdevs.attach(master)

    def register():
        yield from host.rpc.call(
            cluster.server_host.address,
            "fs.register_pdev",
            (path, host.address, master.pdev_id),
        )

    cluster.run(register())
    return master


def serve_echo(master):
    """A master process answering requests with message * 2."""
    def loop():
        while True:
            request = yield master.next_request()
            request.respond(request.message * 2)
    return loop


def test_pdev_request_response():
    cluster = MiniCluster(clients=2)
    master_host = cluster.clients[0]
    client_host = cluster.clients[1]
    master = attach_pdev(cluster, master_host, "/dev/echo")
    spawn(cluster.sim, serve_echo(master)(), name="echo-master", daemon=True)

    def client():
        stream = yield from client_host.fs.open("/dev/echo", OpenMode.READ_WRITE)
        assert stream.is_pdev
        reply = yield from client_host.fs.pdev_request(stream, 21)
        yield from client_host.fs.close(stream)
        return reply

    assert cluster.run(client()) == 42


def test_pdev_connections_tracked():
    cluster = MiniCluster(clients=2)
    master_host = cluster.clients[0]
    client_host = cluster.clients[1]
    master = attach_pdev(cluster, master_host, "/dev/svc")

    def client():
        stream = yield from client_host.fs.open("/dev/svc", OpenMode.READ)
        opened = len(master.connections)
        yield from client_host.fs.close(stream)
        return (opened, len(master.connections))

    assert cluster.run(client()) == (1, 0)


def test_pdev_multiple_clients_one_master():
    cluster = MiniCluster(clients=2)
    master_host = cluster.clients[0]
    master = attach_pdev(cluster, master_host, "/dev/m")
    spawn(cluster.sim, serve_echo(master)(), name="m", daemon=True)

    def one_client(host, value):
        stream = yield from host.fs.open("/dev/m", OpenMode.READ_WRITE)
        reply = yield from host.fs.pdev_request(stream, value)
        yield from host.fs.close(stream)
        return reply

    def scenario():
        a = yield from one_client(cluster.clients[0], 1)
        b = yield from one_client(cluster.clients[1], 2)
        return (a, b)

    assert cluster.run(scenario()) == (2, 4)
    assert master.requests_served == 2


def test_backing_file_page_out_and_in():
    cluster = MiniCluster(clients=2)
    src = cluster.clients[0].fs
    dst = cluster.clients[1].fs

    def scenario():
        backing = BackingFile(src, "/swap/p1")
        yield from backing.create()
        yield from backing.page_out(64 * 1024)
        # Hand off to the target host: no bytes move.
        successor = backing.handoff(dst)
        moved = yield from successor.page_in(64 * 1024)
        return (backing.bytes_paged_out, moved)

    out, read = cluster.run(scenario())
    assert out == 64 * 1024
    assert read == 64 * 1024
    assert cluster.server.bytes_written >= 64 * 1024
    assert cluster.server.bytes_read >= 64 * 1024


def test_backing_file_requires_create():
    cluster = MiniCluster(clients=1)
    backing = BackingFile(cluster.clients[0].fs, "/swap/x")

    def scenario():
        with pytest.raises(BadStream):
            yield from backing.page_out(4096)
        return "ok"

    assert cluster.run(scenario()) == "ok"


def test_stream_export_import_unshared():
    """Migrating the sole holder of a stream keeps it local/cacheable."""
    cluster = MiniCluster(clients=2)
    src = cluster.clients[0].fs
    dst = cluster.clients[1].fs

    def scenario():
        stream = yield from src.open("/f", OpenMode.READ_WRITE | OpenMode.CREATE)
        yield from src.write(stream, 8192)
        state = yield from src.export_stream(stream, cluster.clients[1].address)
        moved = yield from dst.import_stream(state)
        # Offset carried over; not shared since only one holder.
        assert moved.offset == 8192
        assert state["shared"] is False
        got = yield from dst.read(moved, 100)  # at EOF
        yield from dst.seek(moved, 0)
        got = yield from dst.read(moved, 4096)
        yield from dst.close(moved)
        return got

    assert cluster.run(scenario()) == 4096


def test_stream_export_flushes_dirty_blocks():
    cluster = MiniCluster(clients=2)
    src = cluster.clients[0].fs

    def scenario():
        stream = yield from src.open("/dirty", OpenMode.WRITE | OpenMode.CREATE)
        yield from src.write(stream, 16384)
        before = cluster.server.bytes_written
        yield from src.export_stream(stream, cluster.clients[1].address)
        return cluster.server.bytes_written - before

    flushed = cluster.run(scenario())
    assert flushed >= 16384


def test_stream_shared_across_hosts_uses_server_offset():
    """Fork + migrate: both hosts share one access position at the server."""
    cluster = MiniCluster(clients=2)
    src = cluster.clients[0].fs
    dst = cluster.clients[1].fs

    def scenario():
        stream = yield from src.open("/shared", OpenMode.READ_WRITE | OpenMode.CREATE)
        yield from src.write(stream, 100_000)
        yield from src.seek(stream, 0)
        # Simulate fork sharing: bump the refcount, then migrate one sharer.
        stream.refcount += 1
        state = yield from src.export_stream(stream, cluster.clients[1].address)
        assert state["shared"] is True
        assert stream.shared is True  # the local sharer flipped too
        remote = yield from dst.import_stream(state)
        assert remote.shared is True
        # Reads through either side advance one shared offset.
        a = yield from src.read(stream, 10_000)
        b = yield from dst.read(remote, 10_000)
        offset_after = yield from src.rpc.call(
            stream.server,
            "fs.offset",
            __import__("repro.fs.protocol", fromlist=["OffsetOp"]).OffsetOp(
                handle_id=stream.handle_id, stream_id=stream.stream_id
            ),
        )
        return (a, b, offset_after)

    a, b, offset = cluster.run(scenario())
    assert a == 10_000 and b == 10_000
    assert offset == 20_000


def test_pdev_stream_export_keeps_master_reachable():
    """A migrated pdev client keeps talking to the same master."""
    cluster = MiniCluster(clients=2)
    master_host = cluster.clients[0]
    master = attach_pdev(cluster, master_host, "/dev/echo2")
    spawn(cluster.sim, serve_echo(master)(), name="echo2", daemon=True)
    src = cluster.clients[0].fs
    dst = cluster.clients[1].fs

    def scenario():
        stream = yield from src.open("/dev/echo2", OpenMode.READ_WRITE)
        first = yield from src.pdev_request(stream, 1)
        state = yield from src.export_stream(stream, cluster.clients[1].address)
        moved = yield from dst.import_stream(state)
        second = yield from dst.pdev_request(moved, 2)
        yield from dst.close(moved)
        return (first, second)

    assert cluster.run(scenario()) == (2, 4)
