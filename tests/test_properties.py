"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClusterParams
from repro.fs import BlockCache, PrefixTable
from repro.fs.errors import FileNotFound
from repro.fs.protocol import OpenMode
from repro.kernel import PID_STRIDE, home_of_pid
from repro.metrics import Table
from repro.sim import Channel, Resource, Simulator, Sleep, spawn
from repro.workloads import ActivityModel, fit_hyperexponential


# ----------------------------------------------------------------------
# Event engine
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=60))
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    handles = []
    for i, (delay, cancel) in enumerate(entries):
        handles.append((sim.schedule(delay, fired.append, i), cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    sim.run()
    expected = {i for i, (_d, cancel) in enumerate(entries) if not cancel}
    assert set(fired) == expected


@given(st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=20))
def test_sequential_sleeps_accumulate_exactly(durations):
    sim = Simulator()

    def sleeper():
        for duration in durations:
            yield Sleep(duration)
        return sim.now

    task = spawn(sim, sleeper())
    sim.run()
    assert task.result == pytest.approx(sum(durations), rel=1e-9)


# ----------------------------------------------------------------------
# Channels: FIFO and conservation
# ----------------------------------------------------------------------
@given(st.lists(st.integers(), min_size=1, max_size=50))
def test_channel_preserves_order_and_items(items):
    sim = Simulator()
    ch = Channel(sim)
    received = []

    def producer():
        for item in items:
            yield ch.put(item)

    def consumer():
        for _ in items:
            received.append((yield ch.get()))

    spawn(sim, producer())
    spawn(sim, consumer())
    sim.run()
    assert received == items


@given(
    st.lists(st.integers(), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=5),
)
def test_bounded_channel_conserves_items(items, capacity):
    sim = Simulator()
    ch = Channel(sim, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield ch.put(item)

    def consumer():
        for _ in items:
            yield Sleep(0.01)
            received.append((yield ch.get()))

    spawn(sim, producer())
    spawn(sim, consumer())
    sim.run()
    assert received == items


# ----------------------------------------------------------------------
# Resources: mutual exclusion
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=4),
    st.lists(st.floats(min_value=0.01, max_value=2.0), min_size=1, max_size=15),
)
def test_resource_never_exceeds_capacity(capacity, durations):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    concurrent = [0]
    peak = [0]

    def holder(duration):
        yield res.acquire()
        concurrent[0] += 1
        peak[0] = max(peak[0], concurrent[0])
        try:
            yield Sleep(duration)
        finally:
            concurrent[0] -= 1
            res.release()

    for duration in durations:
        spawn(sim, holder(duration))
    sim.run()
    assert peak[0] <= capacity
    assert concurrent[0] == 0
    # Work conservation: with enough demand the resource was saturated.
    if len(durations) >= capacity:
        assert peak[0] == capacity


# ----------------------------------------------------------------------
# Block cache invariants
# ----------------------------------------------------------------------
range_strategy = st.tuples(
    st.integers(min_value=0, max_value=200_000),   # offset
    st.integers(min_value=1, max_value=64_000),    # nbytes
    st.booleans(),                                 # dirty
)


@given(st.lists(range_strategy, min_size=1, max_size=30),
       st.integers(min_value=1, max_value=32))
def test_cache_never_exceeds_capacity_and_no_dirty_loss(operations, capacity):
    cache = BlockCache(capacity_blocks=capacity, block_size=4096)
    written_back = 0
    for i, (offset, nbytes, dirty) in enumerate(operations):
        evicted = cache.install_range(
            "/f", 1, offset, nbytes, dirty=dirty, now=float(i)
        )
        written_back += len(evicted)
        assert len(cache) <= capacity
        assert all(block.dirty for block in evicted)
    # Every dirty block is either still cached or was handed back for
    # write-back — never silently dropped.
    still_dirty = len(cache.dirty_blocks())
    total_dirtied = len(
        {
            ("/f", index)
            for (offset, nbytes, dirty) in operations
            if dirty
            for index in range(offset // 4096, (offset + nbytes - 1) // 4096 + 1)
        }
    )
    assert still_dirty + written_back >= 0
    assert still_dirty <= total_dirtied


@given(st.lists(range_strategy, min_size=1, max_size=20))
def test_cache_hit_after_install_unless_evicted(operations):
    cache = BlockCache(capacity_blocks=10_000, block_size=4096)  # no eviction
    for i, (offset, nbytes, dirty) in enumerate(operations):
        cache.install_range("/f", 1, offset, nbytes, dirty=dirty, now=float(i))
        hit, miss = cache.lookup_range("/f", 1, offset, nbytes)
        assert miss == 0


# ----------------------------------------------------------------------
# Prefix table
# ----------------------------------------------------------------------
path_segment = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=6
)


@given(st.lists(path_segment, min_size=1, max_size=5), st.data())
def test_longest_prefix_wins(segments, data):
    table = PrefixTable()
    table.add("/", 1)
    prefix = "/" + "/".join(segments)
    table.add(prefix, 2)
    # Any path strictly under the prefix routes to server 2.
    extra = data.draw(path_segment)
    assert table.route(prefix) == 2
    assert table.route(f"{prefix}/{extra}") == 2
    # Sibling paths (prefix + suffix in the same segment) go to root.
    assert table.route(prefix + "x") == 1
    assert table.route("/" + extra + "zz") == 1


def test_prefix_table_requires_absolute_paths():
    table = PrefixTable()
    with pytest.raises(ValueError):
        table.add("relative", 1)
    table.add("/", 1)
    with pytest.raises(ValueError):
        table.route("relative")


def test_empty_prefix_table_raises():
    table = PrefixTable()
    with pytest.raises(FileNotFound):
        table.route("/anything")


# ----------------------------------------------------------------------
# Pid encoding
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=1000), st.integers(min_value=1, max_value=PID_STRIDE - 1))
def test_pid_round_trips_home_address(home, seq):
    pid = home * PID_STRIDE + seq
    assert home_of_pid(pid) == home


# ----------------------------------------------------------------------
# Hyperexponential fit
# ----------------------------------------------------------------------
@given(
    st.floats(min_value=0.5, max_value=10.0),
    st.floats(min_value=1.5, max_value=40.0),
)
def test_hyperexponential_fit_reproduces_moments(mean, std_factor):
    std = mean * std_factor
    p, short, long_ = fit_hyperexponential(mean, std, p_short=0.99)
    assert 0 < short < long_
    assert p <= 0.999999
    fitted_mean = p * short + (1 - p) * long_
    fitted_second = 2 * (p * short**2 + (1 - p) * long_**2)
    fitted_std = math.sqrt(max(fitted_second - fitted_mean**2, 0.0))
    assert fitted_mean == pytest.approx(mean, rel=0.05)
    assert fitted_std == pytest.approx(std, rel=0.10)


# ----------------------------------------------------------------------
# Activity model
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=50), st.integers(min_value=1, max_value=3))
@settings(max_examples=20, deadline=None)
def test_activity_intervals_disjoint_and_in_range(host_index, days):
    model = ActivityModel(seed=9)
    duration = days * 86400.0
    intervals = model.generate_intervals(host_index, duration)
    previous_stop = 0.0
    for start, stop in intervals:
        assert 0.0 <= start <= stop <= duration + 1e-6
        assert start >= previous_stop
        previous_stop = stop


@given(st.integers(min_value=0, max_value=20))
@settings(max_examples=10, deadline=None)
def test_busy_fraction_bounded(host_index):
    model = ActivityModel(seed=4)
    intervals = model.generate_intervals(host_index, 86400.0)
    frac = model.busy_fraction(intervals, (0.0, 86400.0))
    assert 0.0 <= frac <= 1.0


# ----------------------------------------------------------------------
# ClusterParams helpers
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=10**9))
def test_pages_and_blocks_cover_bytes(nbytes):
    params = ClusterParams()
    assert params.pages(nbytes) * params.page_size >= nbytes
    assert params.blocks(nbytes) * params.fs_block_size >= nbytes
    if nbytes > 0:
        assert (params.pages(nbytes) - 1) * params.page_size < nbytes


def test_clone_does_not_mutate_original():
    params = ClusterParams()
    clone = params.clone(net_bandwidth=1.0)
    assert clone.net_bandwidth == 1.0
    assert params.net_bandwidth != 1.0


# ----------------------------------------------------------------------
# OpenMode flags
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=0xF))
def test_openmode_flags_consistent(mode):
    readable = OpenMode.readable(mode)
    writable = OpenMode.writable(mode)
    assert readable == bool(mode & OpenMode.READ)
    assert writable == bool(mode & (OpenMode.WRITE | OpenMode.APPEND))
    described = OpenMode.describe(mode)
    assert isinstance(described, str) and described


# ----------------------------------------------------------------------
# Table rendering
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.text(min_size=0, max_size=12),
            st.floats(allow_nan=False, allow_infinity=False,
                      min_value=-1e9, max_value=1e9),
            st.integers(min_value=-10**6, max_value=10**6),
        ),
        min_size=0,
        max_size=10,
    )
)
def test_table_renders_all_rows(rows):
    table = Table(title="t", columns=["a", "b", "c"])
    for row in rows:
        table.add_row(*row)
    rendered = table.render()
    assert "== t ==" in rendered
    # Header + separator + one line per row.
    assert len(rendered.splitlines()) == 3 + len(rows)


def test_table_rejects_ragged_rows():
    table = Table(title="t", columns=["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)
