"""The chaos engine: plans, fabric, injector, invariants, determinism."""

import pytest

from repro import SpriteCluster
from repro.faults import (
    FaultInjector,
    FaultPlan,
    InvariantChecker,
    LinkFabric,
    run_chaos,
)
from repro.fs import OpenMode
from repro.kernel import ProcState, signals as sig
from repro.loadsharing import LoadSharingService
from repro.net import NetworkPartitionedError, Packet
from repro.sim import RandomStreams, Simulator, Sleep, run_until_complete, spawn


# ----------------------------------------------------------------------
# Task.abort (the crash primitive)
# ----------------------------------------------------------------------
def test_task_abort_runs_finally_but_no_more_code():
    sim = Simulator()
    events = []

    def body():
        try:
            yield Sleep(10.0)
            events.append("resumed")
        finally:
            events.append("finally")

    task = spawn(sim, body(), name="victim")
    sim.run(until=1.0)
    assert task.abort(("crashed", 1))
    assert task.done
    assert task.result == ("crashed", 1)
    sim.run(until=20.0)
    # The finally ran (GeneratorExit), but the task never resumed.
    assert events == ["finally"]
    assert not task.abort()     # already dead: no-op


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
def test_plan_builders_and_ordering():
    plan = (
        FaultPlan()
        .host_outage(10.0, "ws1", 5.0)
        .partition(2.0, ["ws0", "ws1"])
        .heal(4.0)
        .migd_outage(3.0, 1.0)
    )
    times = [a.time for a in plan.sorted_actions()]
    assert times == sorted(times)
    kinds = [a.kind for a in plan.sorted_actions()]
    assert kinds == ["partition", "migd_kill", "heal", "migd_restart",
                     "host_crash", "host_reboot"]
    with pytest.raises(ValueError):
        plan.add(-1.0, "host_crash", "ws0")
    with pytest.raises(ValueError):
        plan.add(1.0, "meteor_strike", "ws0")


def test_random_plan_is_seed_deterministic():
    a = FaultPlan.random(RandomStreams(seed=5), ["ws0", "ws1"], 100.0,
                         mtbf=20.0, link_glitches=2)
    b = FaultPlan.random(RandomStreams(seed=5), ["ws0", "ws1"], 100.0,
                         mtbf=20.0, link_glitches=2)
    c = FaultPlan.random(RandomStreams(seed=6), ["ws0", "ws1"], 100.0,
                         mtbf=20.0, link_glitches=2)
    assert a.actions == b.actions
    assert a.actions != c.actions
    assert len(a) > 0
    assert all(act.time <= 100.0 for act in a.actions)


# ----------------------------------------------------------------------
# LinkFabric
# ----------------------------------------------------------------------
def test_fabric_partition_and_links():
    fabric = LinkFabric()
    assert fabric.unicast(1, 2) == (True, 0.0)
    fabric.partition([[1], [2]])
    with pytest.raises(NetworkPartitionedError):
        fabric.unicast(1, 2)
    with pytest.raises(NetworkPartitionedError):
        fabric.bulk(1, 2)
    assert not fabric.multicast(1, 2)
    # Unlisted addresses share the residual group: 3 and 4 still talk.
    assert fabric.unicast(3, 4) == (True, 0.0)
    fabric.heal()
    fabric.set_link(1, 2, drop=0.0, delay=0.25)
    assert fabric.unicast(2, 1) == (True, 0.25)     # undirected
    assert fabric.bulk(1, 2) == 0.25
    fabric.clear_link(1, 2)
    assert fabric.unicast(1, 2) == (True, 0.0)
    with pytest.raises(ValueError):
        fabric.set_link(1, 2, drop=1.5)


def test_fabric_drops_are_seed_deterministic():
    def draws(seed):
        fabric = LinkFabric(rng=RandomStreams(seed=seed).stream("faults.net"))
        fabric.set_link(1, 2, drop=0.5)
        return [fabric.unicast(1, 2)[0] for _ in range(64)]

    assert draws(3) == draws(3)
    assert draws(3) != draws(4)
    dropped = draws(3).count(False)
    assert 0 < dropped < 64


# ----------------------------------------------------------------------
# RPC retry backoff (deterministic, capped)
# ----------------------------------------------------------------------
def test_rpc_backoff_deterministic_and_capped():
    cluster_a = SpriteCluster(workstations=2, start_daemons=False)
    cluster_b = SpriteCluster(workstations=2, start_daemons=False)
    port_a = cluster_a.hosts[0].rpc
    port_b = cluster_b.hosts[0].rpc
    seq_a = [port_a._retry_backoff(i) for i in range(8)]
    seq_b = [port_b._retry_backoff(i) for i in range(8)]
    assert seq_a == seq_b           # same seed, same node -> same jitter
    params = cluster_a.params
    ceiling = params.rpc_backoff_cap * (1.0 + params.rpc_backoff_jitter)
    assert all(0.0 < d <= ceiling for d in seq_a)
    # Different nodes decorrelate (no retry lockstep).
    other = [cluster_a.hosts[1].rpc._retry_backoff(i) for i in range(8)]
    assert other != seq_a


def test_rpc_retries_back_off_exponentially_on_down_host():
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    cluster.params.rpc_retries = 3
    cluster.params.rpc_backoff_jitter = 0.0     # exact delays
    a, b = cluster.hosts[0], cluster.hosts[1]
    b.node.up = False

    def caller():
        started = cluster.sim.now
        try:
            yield from a.rpc.call(b.address, "proc.ping", {})
        except Exception:
            pass
        return cluster.sim.now - started

    elapsed = run_until_complete(cluster.sim, caller(), name="caller")
    params = cluster.params
    backoffs = sum(
        min(params.rpc_backoff_base * 2.0 ** i, params.rpc_backoff_cap)
        for i in range(3)
    )
    # Down-host sends fail without consuming the timeout; total wait is
    # the backoff series (plus wire/cpu epsilon).
    assert elapsed == pytest.approx(backoffs, rel=0.1)


# ----------------------------------------------------------------------
# Host crash / reboot lifecycle
# ----------------------------------------------------------------------
def _migrated_job(cluster, a, b):
    """Start a 30s job homed on ``a`` and migrate it to ``b``."""
    def job(proc):
        yield from proc.compute(30.0)
        return 0

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.5)
        yield from cluster.managers[a.address].migrate(pcb, b.address)

    drv = spawn(cluster.sim, driver(), name="driver")
    cluster.run(until=5.0)
    assert drv.done and drv.exception is None
    return pcb


def test_remote_host_crash_reaps_shadow_and_unblocks_parent():
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    cluster.params.rpc_timeout = 0.5
    cluster.params.rpc_retries = 0
    injector = cluster.faults(detect_delay=2.0)
    a, b = cluster.hosts[0], cluster.hosts[1]
    pcb = _migrated_job(cluster, a, b)
    assert a.kernel.procs[pcb.pid].state == ProcState.MIGRATED

    lost = injector.crash_host(b)
    assert [p.pid for p in lost] == [pcb.pid]
    assert pcb.pid in injector.lost_pids()
    cluster.run(until=cluster.sim.now + 5.0)    # detection delay elapses

    shadow = a.kernel.procs[pcb.pid]
    assert shadow.state == ProcState.ZOMBIE
    assert shadow.exit_status.code == 128 + sig.SIGKILL
    assert injector.reaped == 1
    InvariantChecker(cluster, injector).assert_clean(expected_pids=[pcb.pid])


def test_home_crash_orphans_remote_process():
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    cluster.params.rpc_timeout = 0.5
    cluster.params.rpc_retries = 0
    injector = cluster.faults(detect_delay=2.0)
    a, b = cluster.hosts[0], cluster.hosts[1]
    pcb = _migrated_job(cluster, a, b)
    remote = b.kernel.procs[pcb.pid]
    assert remote.state == ProcState.RUNNING

    injector.crash_host(a)                      # the home dies
    cluster.run(until=cluster.sim.now + 5.0)    # detection delay elapses

    # Orphan detection: the dependent remote process was killed.
    assert injector.orphaned == 1
    assert pcb.pid not in b.kernel.procs
    assert remote.task.done
    InvariantChecker(cluster, injector).assert_clean(expected_pids=[pcb.pid])


def test_reboot_reannounces_to_migd_within_one_period():
    cluster = SpriteCluster(workstations=3, start_daemons=True)
    service = LoadSharingService(cluster, architecture="centralized")
    injector = cluster.faults(service=service, detect_delay=2.0)
    victim = cluster.hosts[2]
    cluster.run(until=30.0)
    assert service.migd.hosts[victim.address].available

    injector.crash_host(victim)
    cluster.run(until=cluster.sim.now + 5.0)
    assert not service.migd.hosts[victim.address].available

    injector.reboot_host(victim)
    cluster.run(
        until=cluster.sim.now + 2 * cluster.params.availability_period
    )
    assert service.migd.hosts[victim.address].available
    assert victim.crashes == 1


# ----------------------------------------------------------------------
# Crash during recovery
# ----------------------------------------------------------------------
def test_server_crash_again_during_reopen_then_final_recovery():
    """The server dies *again* while a client is mid-``fs.reopen``; the
    recovery driver logs the failure and the next restart completes
    recovery, leaving the invariants clean."""
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    cluster.params.rpc_timeout = 0.5
    cluster.params.rpc_retries = 0
    injector = cluster.faults()
    cluster.add_file("/a", size=8192)
    cluster.add_file("/b", size=8192)
    h0, h1 = cluster.hosts[0], cluster.hosts[1]
    server_rpc = cluster.server_hosts[0].rpc
    original_reopen = server_rpc._services["fs.reopen"]

    def scenario():
        s0 = yield from h0.fs.open("/a", OpenMode.READ_WRITE)
        s1 = yield from h1.fs.open("/b", OpenMode.READ_WRITE)
        yield from h0.fs.write(s0, 4096)        # dirty, delayed-write
        injector.crash_server(0)

        # Sabotage: the first reopen crashes the server mid-call and
        # never answers, so recovery dies halfway through.
        def crash_mid_reopen(args):
            injector.crash_server(0)
            yield Sleep(60.0)

        server_rpc.register("fs.reopen", crash_mid_reopen)
        injector.restart_server(0)
        yield Sleep(3.0)
        assert any(e.kind == "recovery_failed" for e in injector.log)

        # Second restart with a healthy handler: recovery completes.
        server_rpc.register("fs.reopen", original_reopen)
        injector.restart_server(0)
        yield Sleep(3.0)
        assert any(e.kind == "recovered" for e in injector.log)

        # Streams survived two crashes; I/O works again end to end.
        n = yield from h0.fs.read(s0, 1024)
        assert n == 1024
        yield from h0.fs.close(s0)
        yield from h1.fs.close(s1)

    run_until_complete(cluster.sim, scenario(), name="scenario")
    assert cluster.file_server.reopens >= 2
    InvariantChecker(cluster, injector).assert_clean()


def test_host_crash_mid_broadcast_is_skipped_cleanly():
    """A receiver that dies while the packet is on the wire just misses
    the message — no error, no stuck delivery, invariants clean."""
    from repro.net import NetNode

    cluster = SpriteCluster(workstations=3, start_daemons=False)
    injector = cluster.faults()
    h0, h1, h2 = cluster.hosts
    # A bare observer endpoint: host inboxes are drained by their RPC
    # server daemons, so delivery is asserted on this node instead.
    observer = NetNode(cluster.sim, "observer")
    cluster.lan.register(observer)

    def scenario():
        packet = Packet(
            src=h0.address, dst=0, kind="test-bcast", payload="hi", size=1024
        )
        bcast = spawn(cluster.sim, cluster.lan.broadcast(packet),
                      name="bcast")
        # Crash h1 while the packet is still on the medium.
        yield Sleep(cluster.lan.transmission_time(1024) * 0.5)
        injector.crash_host(h1)
        assert not h1.node.up
        yield bcast.join()
        return None

    run_until_complete(cluster.sim, scenario(), name="scenario")
    ok, got = observer.inbox.try_get()
    assert ok and got.kind == "test-bcast"      # up receivers got it
    ok, _ = h1.node.inbox.try_get()
    assert not ok                               # crashed mid-flight: missed it
    injector.reboot_host(h1)
    InvariantChecker(cluster, injector).assert_clean()


# ----------------------------------------------------------------------
# Partitions through the full stack
# ----------------------------------------------------------------------
def test_partition_blocks_migration_and_heal_restores():
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    cluster.params.rpc_retries = 0
    injector = cluster.faults()
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(10.0)
        return proc.pcb.current

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        from repro.migration import MigrationRefused

        yield Sleep(0.5)
        injector.partition([a], [b])
        refused = False
        try:
            yield from cluster.managers[a.address].migrate(pcb, b.address)
        except MigrationRefused:
            refused = True
        injector.heal()
        yield from cluster.managers[a.address].migrate(pcb, b.address)
        return refused

    drv = spawn(cluster.sim, driver(), name="driver")
    final = cluster.run_until_complete(pcb.task)
    assert drv.result is True
    assert final == b.address
    assert injector.fabric.blocked > 0
    InvariantChecker(cluster, injector).assert_clean(expected_pids=[pcb.pid])


# ----------------------------------------------------------------------
# The chaos harness (golden determinism test)
# ----------------------------------------------------------------------
def test_chaos_run_is_clean_and_byte_identical():
    first = run_chaos(seed=11, workstations=4, duration=50.0, jobs=5)
    second = run_chaos(seed=11, workstations=4, duration=50.0, jobs=5)
    assert first.violations == []
    assert first.faults > 0
    assert first.jobs == 5
    # Same seed + same plan => byte-identical traces.
    assert first.fingerprint == second.fingerprint
    assert first.to_dict() == second.to_dict()
    # A different seed must not collide.
    other = run_chaos(seed=12, workstations=4, duration=50.0, jobs=5)
    assert other.fingerprint != first.fingerprint
    assert other.violations == []


def test_chaos_random_churn_stays_clean():
    report = run_chaos(
        seed=2, workstations=4, duration=60.0, jobs=5,
        random_churn=True, mtbf=25.0,
    )
    assert report.violations == []
    assert report.faults > 0


# ----------------------------------------------------------------------
# Invariant checker actually catches breakage
# ----------------------------------------------------------------------
def test_invariant_checker_flags_duplicated_process():
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(5.0)
        return 0

    pcb, _ = a.spawn_process(job, name="job")
    cluster.run(until=1.0)
    # Forge a second RUNNING entry for the same pid on another kernel.
    b.kernel.procs[pcb.pid] = pcb
    violations = InvariantChecker(cluster).check()
    kinds = {v.kind for v in violations}
    assert "duplicated-process" in kinds


def test_invariant_checker_flags_lost_process():
    cluster = SpriteCluster(workstations=1, start_daemons=False)
    checker = InvariantChecker(cluster)
    violations = checker.check(expected_pids=[1000042])
    assert [v.kind for v in violations] == ["lost-process"]
    with pytest.raises(AssertionError):
        checker.assert_clean(expected_pids=[1000042])


# ----------------------------------------------------------------------
# Suspicion-based failure detection
# ----------------------------------------------------------------------
def test_detector_declares_genuine_crash_and_reconciles_on_reboot():
    cluster = SpriteCluster(workstations=3, start_daemons=True)
    injector = cluster.faults()
    detector = injector.attach_detector()
    victim = cluster.hosts[2]
    period = cluster.params.heartbeat_period
    threshold = cluster.params.suspicion_threshold
    cluster.run(until=5.0)

    injector.crash_host(victim)
    cluster.run(until=cluster.sim.now + period * (threshold + 2))
    watch = detector.watch(victim.address)
    assert detector.declared == 1
    assert watch.declared
    # Declaration drove the survivor reaction (not a fixed delay).
    assert any(e.kind == "crash_detected" for e in injector.log)

    injector.reboot_host(victim)
    cluster.run(until=cluster.sim.now + 3 * period)
    assert detector.reconciles == 1
    assert not watch.declared
    # The host really crashed: the reconcile is NOT a false suspicion.
    assert detector.false_suspicions == 0


def test_detector_false_suspicion_on_partition_and_flap_damping():
    """A partitioned host looks dead but never crashed: reconcile counts
    a false suspicion, and each flap raises the declaration threshold."""
    cluster = SpriteCluster(workstations=3, start_daemons=True)
    params = cluster.params
    injector = cluster.faults()
    detector = injector.attach_detector()
    victim = cluster.hosts[2]
    period = params.heartbeat_period
    base = params.suspicion_threshold
    cluster.run(until=5.0)

    injector.partition([victim.node.address])
    cluster.run(until=cluster.sim.now + period * (base + 2))
    assert detector.declared == 1
    injector.heal()
    cluster.run(until=cluster.sim.now + 3 * period)
    watch = detector.watch(victim.address)
    assert detector.false_suspicions == 1
    assert watch.flaps == 1
    damped = min(base + params.suspicion_flap_penalty,
                 params.suspicion_max_threshold)
    assert watch.threshold == damped

    # Flap again: the damped threshold needs more silence to re-declare.
    injector.partition([victim.node.address])
    cluster.run(until=cluster.sim.now + period * (base - 1))
    assert detector.declared == 1               # old threshold would fire here
    cluster.run(until=cluster.sim.now + period * (damped + 2))
    assert detector.declared == 2
    injector.heal()
    cluster.run(until=cluster.sim.now + 3 * period)
    assert detector.false_suspicions == 2
    assert watch.threshold == min(base + 2 * params.suspicion_flap_penalty,
                                  params.suspicion_max_threshold)
    InvariantChecker(cluster, injector).assert_clean()


# ----------------------------------------------------------------------
# Overload backpressure
# ----------------------------------------------------------------------
def test_source_refuses_past_outgoing_migration_cap():
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    cluster.params.migration_max_outgoing = 1
    a, b = cluster.hosts[0], cluster.hosts[1]
    manager = cluster.managers[a.address]

    def job(proc):
        yield from proc.compute(5.0)
        return 0

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        from repro.migration import MigrationRefused

        yield Sleep(0.5)
        manager.outgoing_in_flight = 1          # a transfer already in flight
        try:
            yield from manager.migrate(pcb, b.address)
        except MigrationRefused:
            manager.outgoing_in_flight = 0
            return "refused"

    drv = spawn(cluster.sim, driver(), name="driver")
    cluster.run_until_complete(pcb.task)
    assert drv.result == "refused"
    assert manager.refused_outgoing_cap == 1
    assert manager.records[-1].detail["refusal"] == (
        "source at outgoing-migration cap"
    )


def test_target_backpressures_foreign_work_but_never_eviction():
    """At the incoming cap the target answers RetryLaterError for
    foreign work — but a process coming back to its *home* is exempt
    (eviction must never fail)."""
    cluster = SpriteCluster(workstations=3, start_daemons=False)
    cluster.params.migration_max_incoming = 1
    cluster.params.rpc_retries = 1
    a, b = cluster.hosts[0], cluster.hosts[1]
    target = cluster.managers[b.address]
    home_mgr = cluster.managers[a.address]

    def job(proc):
        yield from proc.compute(30.0)
        return 0

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        from repro.migration import MigrationRefused

        yield Sleep(0.5)
        # Saturate the target's lease table: foreign work is refused.
        target._tickets[(999999, 1)] = object()
        refused = False
        try:
            yield from home_mgr.migrate(pcb, b.address)
        except MigrationRefused:
            refused = True
        assert refused
        assert target.refused_incoming_busy >= 1
        assert home_mgr.records[-1].detail["refusal"] == (
            "target busy (retry later)"
        )
        # Cap released: the same migration now lands.
        del target._tickets[(999999, 1)]
        yield from home_mgr.migrate(pcb, b.address)
        # Eviction exemption: send it home while the *home* manager is
        # saturated — home processes bypass the incoming cap.
        home_mgr._tickets[(999998, 1)] = object()
        yield from target.migrate(pcb, a.address)
        del home_mgr._tickets[(999998, 1)]
        return pcb.current

    drv = spawn(cluster.sim, driver(), name="driver")
    cluster.run_until_complete(pcb.task)
    assert drv.result == a.address
    InvariantChecker(cluster).assert_clean(expected_pids=[pcb.pid])


def test_migd_sheds_selection_requests_when_backlogged():
    """Past ``migd_max_pending`` queued offers, selection requests get
    an explicit busy verdict (clients fall back to local execution);
    updates and releases are never shed."""
    cluster = SpriteCluster(workstations=3, start_daemons=True)
    cluster.params.migd_max_pending = 1
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.run(until=30.0)
    migd = service.migd
    served_before = migd.requests_served

    # Backlog deeper than the cap, as seen by the queue-depth probe.
    # (Stuff the buffer directly: the idle server task is blocked in a
    # get(), so try_put would hand the first item straight to its
    # waiter instead of queueing it — and crash the daemon later.)
    migd.master.requests._items.append(None)
    migd.master.requests._items.append(None)

    reply = migd._handle({"op": "request", "client": 999, "n": 1}, 999)
    assert reply == {"hosts": [], "busy": True}
    assert migd.refused_busy == 1
    assert migd.requests_served == served_before
    # Updates are never shed, even backlogged.
    reply = migd._handle(
        {"op": "update", "host": 999, "load": 0.0, "input_idle": 100.0,
         "available": True, "time": cluster.sim.now}, 999,
    )
    assert reply == {"ok": True}
    # Drain the stuffing so the server daemon never sees it.
    assert migd.master.requests.try_get() == (True, None)
    assert migd.master.requests.try_get() == (True, None)

    # End to end: with the backlog gone, a real selector request is
    # served again and the busy verdict above was counted client-side
    # when it travels the wire (unit-covered here, chaos-covered in
    # the adversarial gauntlet).
    selector = service.selectors[cluster.hosts[1].address]
    task = spawn(cluster.sim, selector.request(n=1), name="ask")
    cluster.run(until=cluster.sim.now + 5.0)
    assert task.done
    assert migd.requests_served == served_before + 1


# ----------------------------------------------------------------------
# The adversarial gauntlet (golden determinism + exactly-once)
# ----------------------------------------------------------------------
def test_adversarial_chaos_is_clean_and_byte_identical():
    first = run_chaos(seed=11, workstations=4, duration=50.0, jobs=5,
                      adversarial=True)
    second = run_chaos(seed=11, workstations=4, duration=50.0, jobs=5,
                       adversarial=True)
    assert first.violations == []
    # The adversarial machinery actually engaged...
    assert first.packets_duplicated > 0
    assert first.duplicates_suppressed > 0
    assert first.suspicions_declared > 0
    # ...and the exactly-once contract held under it.
    assert first.double_executions == 0
    # Same seed + same plan => byte-identical traces, detector included.
    assert first.fingerprint == second.fingerprint
    assert first.to_dict() == second.to_dict()


def test_invariant_checker_flags_double_execution():
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    cluster.hosts[1].rpc.double_executions = 1   # forge a violation
    violations = InvariantChecker(cluster).check()
    assert "double-execution" in {v.kind for v in violations}
