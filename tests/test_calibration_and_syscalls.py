"""Calibration self-checks and the small-syscall additions."""

import pytest

from repro import SpriteCluster
from repro.config import ClusterParams
from repro.fs import OpenMode
from repro.validation import measure_calibration


# ----------------------------------------------------------------------
# Calibration: the model sits on Sun-3-class operating points
# ----------------------------------------------------------------------
def test_calibration_null_rpc_near_paper():
    report = measure_calibration()
    # Target: ~1.9 ms null kernel-to-kernel RPC (Sun-3).
    assert 1.0 < report.null_rpc_ms < 4.0


def test_calibration_bulk_throughput_near_ethernet():
    report = measure_calibration()
    # Target: 480-1100 KB/s effective on 10 Mb/s Ethernet.
    assert 400 < report.bulk_throughput_kbs < 1200


def test_calibration_local_call_cheap():
    report = measure_calibration()
    assert report.local_call_ms < 0.5
    assert report.null_rpc_ms > 5 * report.local_call_ms


def test_calibration_scales_with_bandwidth():
    fast = measure_calibration(ClusterParams().clone(net_bandwidth=10 * 1024 * 1024))
    slow = measure_calibration()
    assert fast.bulk_throughput_kbs > 5 * slow.bulk_throughput_kbs


# ----------------------------------------------------------------------
# dup / dup2 / getuid / times
# ----------------------------------------------------------------------
def test_dup_shares_offset():
    cluster = SpriteCluster(workstations=1, start_daemons=False)
    cluster.add_file("/f", size=10_000)

    def job(proc):
        fd = yield from proc.open("/f", OpenMode.READ)
        fd2 = yield from proc.dup(fd)
        yield from proc.read(fd, 1000)
        got = yield from proc.read(fd2, 1000)     # continues at 1000
        offset = proc.pcb.stream(fd).offset
        yield from proc.close(fd)
        yield from proc.close(fd2)
        return (got, offset)

    got, offset = cluster.run_process(cluster.hosts[0], job)
    assert got == 1000
    assert offset == 2000


def test_dup2_replaces_target_descriptor():
    cluster = SpriteCluster(workstations=1, start_daemons=False)
    cluster.add_file("/a", size=100)
    cluster.add_file("/b", size=100)

    def job(proc):
        fd_a = yield from proc.open("/a", OpenMode.READ)
        fd_b = yield from proc.open("/b", OpenMode.READ)
        returned = yield from proc.dup2(fd_a, fd_b)
        # fd_b now refers to /a.
        path = proc.pcb.stream(fd_b).path
        yield from proc.close(fd_a)
        yield from proc.close(fd_b)
        return (returned, path)

    returned, path = cluster.run_process(cluster.hosts[0], job)
    assert path == "/a"


def test_getuid_inherited_by_child():
    cluster = SpriteCluster(workstations=1, start_daemons=False)
    host = cluster.hosts[0]

    def child(proc):
        uid = yield from proc.getuid()
        yield from proc.exit(uid)

    def parent(proc):
        yield from proc.fork(child, name="kid")
        status = yield from proc.wait()
        return status.code

    pcb, _ = host.spawn_process(parent, name="parent", uid=42)
    assert cluster.run_until_complete(pcb.task) == 42


def test_times_elapsed_vs_cpu():
    cluster = SpriteCluster(workstations=1, start_daemons=False)
    host = cluster.hosts[0]

    def job(proc):
        yield from proc.compute(1.0)
        yield from proc.sleep(2.0)
        report = yield from proc.times()
        return report

    report = cluster.run_process(host, job)
    assert report["utime"] == pytest.approx(1.0, abs=0.1)
    assert report["elapsed"] == pytest.approx(3.0, abs=0.2)


def test_times_consistent_across_migration():
    """times() uses the home clock even after migration (class HOME)."""
    from repro.sim import Sleep, spawn

    cluster = SpriteCluster(workstations=2, start_daemons=False)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.compute(2.0)
        report = yield from proc.times()
        return (report, proc.pcb.current)

    pcb, _ = a.spawn_process(job, name="job")

    def driver():
        yield Sleep(0.5)
        yield from cluster.managers[a.address].migrate(pcb, b.address)

    spawn(cluster.sim, driver(), name="driver")
    report, where = cluster.run_until_complete(pcb.task)
    assert where == b.address
    assert report["elapsed"] == pytest.approx(cluster.sim.now, abs=0.2)
