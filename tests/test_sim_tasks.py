"""Unit tests for tasks, events, joins, interrupts, and races."""

import pytest

from repro.sim import (
    TIMED_OUT,
    Interrupted,
    SimEvent,
    Simulator,
    Sleep,
    TaskFailed,
    first,
    spawn,
    with_timeout,
)


def test_task_returns_result():
    sim = Simulator()

    def job():
        yield Sleep(2.0)
        return 42

    task = spawn(sim, job())
    sim.run()
    assert task.done
    assert task.result == 42
    assert sim.now == 2.0


def test_spawn_requires_generator():
    sim = Simulator()

    def not_a_gen():
        return 1

    with pytest.raises(TypeError, match="generator"):
        spawn(sim, not_a_gen)  # type: ignore[arg-type]


def test_yield_from_composition():
    sim = Simulator()

    def inner():
        yield Sleep(1.0)
        return "inner-result"

    def outer():
        value = yield from inner()
        yield Sleep(1.0)
        return value + "!"

    task = spawn(sim, outer())
    sim.run()
    assert task.result == "inner-result!"
    assert sim.now == 2.0


def test_join_waits_for_completion():
    sim = Simulator()

    def worker():
        yield Sleep(3.0)
        return "payload"

    def boss(worker_task):
        value = yield worker_task.join()
        return (sim.now, value)

    worker_task = spawn(sim, worker())
    boss_task = spawn(sim, boss(worker_task))
    sim.run()
    assert boss_task.result == (3.0, "payload")


def test_join_already_finished_task():
    sim = Simulator()

    def quick():
        yield Sleep(1.0)
        return "done"

    quick_task = spawn(sim, quick())

    def late_joiner():
        yield Sleep(10.0)
        value = yield quick_task.join()
        return value

    late = spawn(sim, late_joiner())
    sim.run()
    assert late.result == "done"


def test_join_failed_task_raises_taskfailed():
    sim = Simulator()

    def bomb():
        yield Sleep(1.0)
        raise RuntimeError("kaboom")

    def joiner(bomb_task):
        with pytest.raises(TaskFailed) as exc_info:
            yield bomb_task.join()
        return str(exc_info.value.original)

    bomb_task = spawn(sim, bomb(), name="bomb")
    joiner_task = spawn(sim, joiner(bomb_task))
    sim.run()
    assert joiner_task.result == "kaboom"


def test_event_trigger_wakes_all_waiters():
    sim = Simulator()
    event = SimEvent(sim, "go")
    woken = []

    def waiter(label):
        value = yield event.wait()
        woken.append((label, value, sim.now))

    spawn(sim, waiter("a"))
    spawn(sim, waiter("b"))
    sim.schedule(5.0, event.trigger, "green")
    sim.run()
    assert sorted(woken) == [("a", "green", 5.0), ("b", "green", 5.0)]


def test_event_wait_after_trigger_resumes_immediately():
    sim = Simulator()
    event = SimEvent(sim)
    event.trigger(7)

    def waiter():
        value = yield event.wait()
        return (sim.now, value)

    task = spawn(sim, waiter())
    sim.run()
    assert task.result == (0.0, 7)


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = SimEvent(sim)
    event.trigger()
    with pytest.raises(Exception, match="twice"):
        event.trigger()


def test_event_fail_propagates_to_waiters():
    sim = Simulator()
    event = SimEvent(sim)

    def waiter():
        try:
            yield event.wait()
        except RuntimeError as err:
            return f"caught {err}"

    task = spawn(sim, waiter())
    sim.schedule(1.0, event.fail, RuntimeError("nope"))
    sim.run()
    assert task.result == "caught nope"


def test_interrupt_cancels_sleep():
    sim = Simulator()

    def sleeper():
        try:
            yield Sleep(100.0)
        except Interrupted as intr:
            return ("interrupted", intr.cause, sim.now)

    task = spawn(sim, sleeper())
    sim.schedule(2.0, task.interrupt, "wake-up")
    sim.run()
    assert task.result == ("interrupted", "wake-up", 2.0)


def test_uncaught_interrupt_kills_task_quietly():
    sim = Simulator()

    def sleeper():
        yield Sleep(100.0)

    task = spawn(sim, sleeper())
    sim.schedule(1.0, task.interrupt, "die")
    sim.run()
    assert task.done
    assert task.exception is None
    assert task.result == "die"


def test_interrupt_finished_task_returns_false():
    sim = Simulator()

    def quick():
        yield Sleep(1.0)

    task = spawn(sim, quick())
    sim.run()
    assert task.interrupt("late") is False


def test_joiner_of_interrupted_task_gets_cause():
    sim = Simulator()

    def sleeper():
        yield Sleep(100.0)

    def joiner(target):
        value = yield target.join()
        return value

    sleeper_task = spawn(sim, sleeper())
    joiner_task = spawn(sim, joiner(sleeper_task))
    sim.schedule(1.0, sleeper_task.interrupt, "evicted")
    sim.run()
    assert joiner_task.result == "evicted"


def test_first_returns_winner_and_cancels_losers():
    sim = Simulator()
    event = SimEvent(sim)

    def racer():
        index, value = yield first(Sleep(10.0), event.wait())
        return (index, value, sim.now)

    task = spawn(sim, racer())
    sim.schedule(3.0, event.trigger, "evt")
    sim.run()
    assert task.result == (1, "evt", 3.0)
    # The losing sleep was cancelled: clock should not advance to 10.
    assert sim.now == 3.0


def test_first_sleep_wins():
    sim = Simulator()
    event = SimEvent(sim)

    def racer():
        index, value = yield first(Sleep(1.0), event.wait())
        return index

    task = spawn(sim, racer())
    sim.run(until=5.0)
    assert task.result == 0


def test_with_timeout_returns_value_when_fast():
    sim = Simulator()
    event = SimEvent(sim)

    def waiter():
        value = yield from with_timeout(event.wait(), timeout=10.0)
        return value

    task = spawn(sim, waiter())
    sim.schedule(1.0, event.trigger, "fast")
    sim.run()
    assert task.result == "fast"


def test_with_timeout_returns_sentinel_when_slow():
    sim = Simulator()
    event = SimEvent(sim)

    def waiter():
        value = yield from with_timeout(event.wait(), timeout=2.0)
        return value is TIMED_OUT

    task = spawn(sim, waiter())
    sim.run(until=100.0)
    assert task.result is True


def test_yielding_non_effect_fails_task():
    sim = Simulator()

    def bad():
        yield 42  # type: ignore[misc]

    spawn(sim, bad(), name="bad")
    with pytest.raises(TypeError, match="not an Effect"):
        sim.run()


def test_self_interrupt_delivered_at_next_suspension():
    sim = Simulator()

    def selfish(task_ref):
        yield Sleep(1.0)
        # interrupt self while running: pending flag set, delivered at
        # the next yield below.
        task_ref[0].interrupt("self")
        try:
            yield Sleep(5.0)
        except Interrupted as intr:
            return intr.cause

    holder = [None]
    task = spawn(sim, selfish(holder))
    holder[0] = task
    sim.run()
    assert task.result == "self"


def test_many_tasks_complete_deterministically():
    sim = Simulator()
    finish_order = []

    def job(i):
        yield Sleep(float(i % 7) + 1.0)
        finish_order.append(i)

    for i in range(50):
        spawn(sim, job(i))
    sim.run()
    assert len(finish_order) == 50
    # Same delay -> FIFO by spawn order.
    expected = sorted(range(50), key=lambda i: (i % 7, i))
    assert finish_order == expected


def test_first_of_all_of_composition():
    """Combinators nest: race a gather against a deadline."""
    from repro.sim import all_of

    sim = Simulator()
    fast_a, fast_b = SimEvent(sim), SimEvent(sim)

    def racer():
        index, value = yield first(
            all_of(fast_a.wait(), fast_b.wait()),
            Sleep(10.0),
        )
        return (index, value, sim.now)

    task = spawn(sim, racer())
    sim.schedule(1.0, fast_a.trigger, "a")
    sim.schedule(2.0, fast_b.trigger, "b")
    sim.run(until=20.0)
    index, value, when = task.result
    assert index == 0
    assert value == ["a", "b"]
    assert when == 2.0


def test_first_of_all_of_deadline_wins():
    from repro.sim import all_of

    sim = Simulator()
    never = SimEvent(sim)

    def racer():
        index, _value = yield first(
            all_of(never.wait(), Sleep(1.0)),
            Sleep(3.0),
        )
        return (index, sim.now)

    task = spawn(sim, racer())
    sim.run(until=10.0)
    assert task.result == (1, 3.0)
