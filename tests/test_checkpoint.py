"""repro.checkpoint: images, daemons, restart, policies, determinism."""

import pytest

from repro import SpriteCluster
from repro.checkpoint import (
    CheckpointService,
    POLICIES,
    policy_named,
)
from repro.faults import InvariantChecker, run_chaos
from repro.migration import MigrationRefused
from repro.sim import Sleep, run_until_complete, spawn

#: Chaos fingerprint with checkpointing entirely off (the seed repo's
#: golden) — pins the zero-cost-when-off guarantee at the API level.
GOLDEN_CHAOS_OFF = (
    "d12358eae848c8c2630ba70b902395118062ee8b4de64a7cae11467de4ea505c"
)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def build(workstations=3, seed=5, interval=2.0, mode="full",
          detect_delay=5.0):
    cluster = SpriteCluster(workstations=workstations, seed=seed)
    cluster.standard_images()
    injector = cluster.faults(detect_delay=detect_delay)
    service = CheckpointService(
        cluster, injector=injector, interval=interval, mode=mode
    )
    return cluster, injector, service


def worker(proc, work, memory=0):
    """Restart-aware job: only re-runs the remainder after a restore
    (the epsilon guards float residue in ``cpu_time``)."""
    if memory and proc.pcb.vm.size < memory:
        yield from proc.use_memory(memory)
    while work - proc.pcb.cpu_time > 1e-6:
        yield from proc.compute(min(1.0, work - proc.pcb.cpu_time))
    return 0


def dirty_worker(proc, work, memory):
    """Like ``worker`` but keeps re-dirtying pages, for delta images."""
    if proc.pcb.vm.size < memory:
        yield from proc.use_memory(memory)
    while work - proc.pcb.cpu_time > 1e-6:
        proc.pcb.vm.touch(4096, write=True)
        yield from proc.compute(min(1.0, work - proc.pcb.cpu_time))
    return 0


def protect(service, host, program, *args, name="job"):
    pcb, _ = host.spawn_process(program, *args, name=name)
    service.register(pcb, program, *args)
    return pcb


# ----------------------------------------------------------------------
# Periodic imaging
# ----------------------------------------------------------------------
def test_periodic_full_images_bank_progress():
    cluster, _, service = build()
    pcb = protect(service, cluster.hosts[0], worker, 30.0)
    cluster.run(until=9.0)

    images = service.store.images[pcb.pid]
    assert len(images) >= 2
    assert all(im.intact for im in images)
    assert all(im.mode == "full" for im in images)
    # Progress is monotone across generations and matches sim time spent.
    progresses = [im.progress for im in images]
    assert progresses == sorted(progresses)
    latest = service.store.latest_intact(pcb.pid)
    assert latest is images[-1]
    assert latest.progress > 0
    # Generations are trimmed to the configured bound.
    assert len(images) <= max(1, cluster.params.checkpoint_generations)
    stats = service.stats()
    assert stats["checkpoints"] >= 2
    assert stats["bytes_written"] > 0


def test_incremental_images_chain_on_full_base():
    cluster, _, service = build(mode="incremental",
                                detect_delay=3.0)
    memory = 256 * 1024
    pcb = protect(service, cluster.hosts[0], dirty_worker, 40.0, memory)
    cluster.run(until=11.0)

    images = service.store.images[pcb.pid]
    fulls = [im for im in images if im.mode == "full"]
    deltas = [im for im in images if im.mode == "incremental"]
    assert fulls and deltas
    base = fulls[-1]
    for delta in deltas:
        assert delta.base_seq >= 0
        # A delta carries only dirtied pages, far below the full VM...
        assert delta.image_bytes < base.image_bytes
        # ...but restoring it replays the whole chain.
        assert delta.restore_bytes > delta.image_bytes
    # Stats count every delta taken; the store retains only the
    # trimmed tail (plus the base the tail chains on).
    assert service.stats()["incrementals"] >= len(deltas)
    assert images[0] is base


def test_clean_exit_unregisters_and_drops_images():
    cluster, injector, service = build()
    pcb = protect(service, cluster.hosts[0], worker, 4.0)
    cluster.run(until=10.0)
    assert pcb.task.done and pcb.task.result == 0
    service.unregister(pcb.pid)
    assert service.store.latest_intact(pcb.pid) is None
    assert service.accounted_pids() == set()
    InvariantChecker(cluster, injector).assert_clean(expected_pids=[pcb.pid])


# ----------------------------------------------------------------------
# Crash -> restart
# ----------------------------------------------------------------------
def test_restart_after_crash_finishes_elsewhere():
    cluster, injector, service = build()
    a = cluster.hosts[0]
    pcb = protect(service, a, worker, 10.0)

    def chaos():
        yield Sleep(5.0)
        injector.crash_host(a)
        yield Sleep(20.0)
        injector.heal_all()

    spawn(cluster.sim, chaos(), name="chaos", daemon=True)
    cluster.run(until=60.0)

    assert pcb.task.done and pcb.task.result == 0
    assert pcb.current != a.address
    assert pcb.restored_progress > 0
    # The restore banked image progress: the job did not start over.
    assert pcb.cpu_time < 10.0 + pcb.restored_progress + 1e-6
    stats = service.stats()
    assert stats["restores"] == 1
    assert stats["unrecoverable"] == 0
    InvariantChecker(cluster, injector).assert_clean(expected_pids=[pcb.pid])


def test_restart_after_double_crash():
    cluster, injector, service = build(workstations=3)
    a, b = cluster.hosts[0], cluster.hosts[1]
    pcb = protect(service, a, worker, 20.0)

    def chaos():
        yield Sleep(5.0)
        injector.crash_host(a)      # detected t=10, restored on b
        yield Sleep(10.0)
        injector.crash_host(b)      # detected t=20, restored on c
        yield Sleep(25.0)
        injector.heal_all()

    spawn(cluster.sim, chaos(), name="chaos", daemon=True)
    cluster.run(until=90.0)

    assert pcb.task.done and pcb.task.result == 0
    assert pcb.current == cluster.hosts[2].address
    assert service.stats()["restores"] == 2
    assert service.stats()["unrecoverable"] == 0
    InvariantChecker(cluster, injector).assert_clean(expected_pids=[pcb.pid])


def test_torn_images_skipped_by_digest():
    cluster, injector, service = build()
    a = cluster.hosts[0]
    pcb = protect(service, a, worker, 15.0)
    cluster.run(until=5.0)          # intact images at t=2, t=4

    good = service.store.latest_intact(pcb.pid)
    assert good is not None and good.intact

    # A crash mid-write leaves an unsealed image (no digest at all)...
    torn = service.store.begin(pcb.pid, pcb.name, "full")
    torn.progress = 999.0
    assert not torn.intact
    # ...and torn storage can also corrupt a sealed one (digest mismatch).
    corrupt = service.store.begin(pcb.pid, pcb.name, "full")
    corrupt.progress = 999.0
    corrupt.seal()
    corrupt.progress = 1000.0
    assert not corrupt.intact

    assert service.store.latest_intact(pcb.pid) is good
    assert service.store.torn_after(good) == 2

    def chaos():
        yield Sleep(0.1)
        injector.crash_host(a)
        yield Sleep(20.0)
        injector.heal_all()

    spawn(cluster.sim, chaos(), name="chaos", daemon=True)
    cluster.run(until=60.0)

    assert pcb.task.done and pcb.task.result == 0
    stats = service.stats()
    assert stats["restores"] == 1
    assert stats["torn_skipped"] == 2
    # Restore banked the *intact* generation, never the torn 999s image.
    assert pcb.restored_progress == pytest.approx(good.progress)
    InvariantChecker(cluster, injector).assert_clean(expected_pids=[pcb.pid])


def test_unrecoverable_without_any_intact_image():
    cluster, injector, service = build(interval=30.0)   # never fires
    a = cluster.hosts[0]
    pcb = protect(service, a, worker, 10.0)

    def chaos():
        yield Sleep(2.0)
        injector.crash_host(a)

    spawn(cluster.sim, chaos(), name="chaos", daemon=True)
    cluster.run(until=40.0)

    assert pcb.task.done and pcb.task.result != 0
    stats = service.stats()
    assert stats["restores"] == 0
    # Counted exactly once, even across repeated detection sweeps.
    assert stats["unrecoverable"] == 1
    assert service.registry[pcb.pid].abandoned


# ----------------------------------------------------------------------
# Mutual exclusion with migration
# ----------------------------------------------------------------------
def test_migration_refuses_process_being_checkpointed():
    cluster, _, service = build()
    a, b = cluster.hosts[0], cluster.hosts[1]
    pcb = protect(service, a, worker, 30.0)
    cluster.run(until=1.0)

    pcb.checkpoint_lock = True
    refusal = {}

    def driver():
        try:
            yield from cluster.managers[a.address].migrate(pcb, b.address)
        except MigrationRefused as err:
            refusal["msg"] = str(err)

    run_until_complete(cluster.sim, driver(), name="driver")
    assert "checkpointed" in refusal["msg"]

    # Lock released -> the same migration goes through.
    pcb.checkpoint_lock = False

    def retry():
        yield from cluster.managers[a.address].migrate(pcb, b.address)

    run_until_complete(cluster.sim, retry(), name="retry")
    assert pcb.current == b.address


def test_daemon_skips_process_holding_migration_ticket():
    cluster, _, service = build()
    a = cluster.hosts[0]
    pcb = protect(service, a, worker, 30.0)
    cluster.run(until=1.0)
    daemon = service.daemons[a.address]
    before = len(service.store.images.get(pcb.pid, []))

    pcb.migration_ticket = object()     # migration owns the state
    taken = run_until_complete(cluster.sim, daemon.sweep(), name="sweep")
    assert taken == 0
    assert daemon.skipped_migrating == 1
    assert len(service.store.images.get(pcb.pid, [])) == before

    pcb.migration_ticket = None         # released -> next sweep images it
    taken = run_until_complete(cluster.sim, daemon.sweep(), name="sweep")
    assert taken == 1
    assert not pcb.checkpoint_lock      # lock never leaks past the write
    assert len(service.store.images[pcb.pid]) == before + 1


# ----------------------------------------------------------------------
# Policies and chaos determinism
# ----------------------------------------------------------------------
def test_policy_names_and_aliases():
    assert policy_named("migrate") is POLICIES["migrate"]
    assert policy_named("proactive-migrate") is POLICIES["migrate"]
    assert policy_named("checkpoint-restart") is POLICIES["checkpoint"]
    assert policy_named("hybrid").proactive_migration
    assert policy_named("hybrid").checkpointing
    assert not policy_named("checkpoint").proactive_migration
    with pytest.raises(KeyError):
        policy_named("pray")


def test_chaos_with_checkpointing_off_matches_golden():
    report = run_chaos(seed=11, workstations=4, duration=50.0, jobs=5)
    assert report.policy == "migrate"
    assert report.checkpoints == 0 and report.restores == 0
    assert report.fingerprint == GOLDEN_CHAOS_OFF


@pytest.mark.parametrize("policy", ["checkpoint", "hybrid"])
def test_chaos_checkpoint_policies_clean_and_deterministic(policy):
    kwargs = dict(
        seed=2, workstations=4, duration=60.0, jobs=5,
        random_churn=True, mtbf=25.0,
        policy=policy, checkpoint_interval=5.0, job_memory=64 * 1024,
    )
    first = run_chaos(**kwargs)
    second = run_chaos(**kwargs)
    assert first.clean, first.violations
    assert first.fingerprint == second.fingerprint
    assert first.checkpoints > 0
    assert 0.0 <= first.availability <= 1.0
    assert first.goodput > 0
    if policy == "checkpoint":
        assert first.migrations == 0


def test_policies_engage_disjoint_mechanisms():
    # Which mechanism runs is a policy invariant (which *wins* on
    # availability is seed-dependent — that is the P8 study's job).
    kwargs = dict(
        seed=2, workstations=4, duration=60.0, jobs=5,
        random_churn=True, mtbf=25.0,
        checkpoint_interval=5.0, job_memory=64 * 1024,
    )
    migrate = run_chaos(policy="migrate", **kwargs)
    ckpt = run_chaos(policy="checkpoint", **kwargs)
    hybrid = run_chaos(policy="hybrid", **kwargs)
    assert migrate.checkpoints == 0 and migrate.restores == 0
    assert ckpt.migrations == 0 and ckpt.checkpoints > 0
    assert hybrid.checkpoints > 0
    assert hybrid.migrations > 0
    for report in (migrate, ckpt, hybrid):
        assert report.clean, report.violations


# ----------------------------------------------------------------------
# Invariant-checker accounting
# ----------------------------------------------------------------------
def test_checkpointed_but_dead_process_is_accounted():
    cluster, injector, service = build(interval=1.0)
    a = cluster.hosts[0]
    pcb = protect(service, a, worker, 30.0)
    cluster.run(until=3.0)
    assert service.store.latest_intact(pcb.pid) is not None

    # Crash and stop *before* detection: no kernel holds the process,
    # but its image makes it accounted state, not a conservation leak.
    injector.crash_host(a)
    assert pcb.pid in service.accounted_pids()
    checker = InvariantChecker(cluster, injector)
    assert checker._checkpointed_pids() == {pcb.pid}
    checker.assert_clean(expected_pids=[pcb.pid])
