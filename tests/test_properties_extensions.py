"""Property-based tests for the extension components."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import LatencyHistogram
from repro.sim import Simulator, Sleep, all_of, spawn


@given(st.lists(st.floats(min_value=1e-6, max_value=3600.0),
                min_size=1, max_size=200))
def test_histogram_percentiles_monotone_and_bounded(samples):
    hist = LatencyHistogram()
    hist.extend(samples)
    p50, p95, p99 = (hist.percentile(q) for q in (50, 95, 99))
    assert p50 <= p95 <= p99 <= hist.max_value
    assert hist.count == len(samples)
    assert hist.mean == pytest.approx(float(np.mean(samples)), rel=1e-6)
    # A geometric-bucket percentile overestimates by at most one bucket.
    assert p50 <= max(samples)
    assert p99 >= float(np.percentile(samples, 50)) / hist.factor


@given(st.lists(st.floats(min_value=1e-6, max_value=100.0),
                min_size=1, max_size=50),
       st.lists(st.floats(min_value=1e-6, max_value=100.0),
                min_size=1, max_size=50))
def test_histogram_merge_equals_combined(first_samples, second_samples):
    merged = LatencyHistogram()
    merged.extend(first_samples)
    other = LatencyHistogram()
    other.extend(second_samples)
    merged.merge(other)
    combined = LatencyHistogram()
    combined.extend(first_samples + second_samples)
    assert merged.count == combined.count
    assert merged.percentile(95) == combined.percentile(95)
    assert merged.max_value == combined.max_value


@given(st.lists(st.floats(min_value=0.01, max_value=20.0),
                min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_all_of_completes_at_slowest(durations):
    sim = Simulator()

    def waiter():
        yield all_of(*(Sleep(d) for d in durations))
        return sim.now

    task = spawn(sim, waiter())
    sim.run()
    assert task.result == pytest.approx(max(durations), rel=1e-9)


@given(st.integers(min_value=1, max_value=6), st.data())
@settings(max_examples=15, deadline=None)
def test_caching_selector_never_double_grants(rounds, data):
    """Interleaved request/release through the cache never hands the
    same host to two outstanding grants."""
    from repro import SpriteCluster
    from repro.loadsharing import CachingSelector, LoadSharingService
    from repro.sim import run_until_complete

    cluster = SpriteCluster(workstations=5, start_daemons=True)
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.run(until=45.0)
    selector = CachingSelector(service.selector_for(cluster.hosts[0]), ttl=5.0)
    sizes = [data.draw(st.integers(min_value=1, max_value=3))
             for _ in range(rounds)]

    def scenario():
        outstanding = set()
        for size in sizes:
            granted = yield from selector.request(size)
            for address in granted:
                assert address not in outstanding, "double grant!"
                outstanding.add(address)
            yield Sleep(1.0)
            yield from selector.release(granted)
            outstanding -= set(granted)
        return True

    assert run_until_complete(cluster.sim, scenario(), name="s") is True
