"""Smoke tests: the quick example scenarios run end to end."""

import pathlib
import runpy


EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "migrated:" in out
    assert "transparency" in out


def test_fault_tolerance_runs(capsys):
    run_example("fault_tolerance_demo.py")
    out = capsys.readouterr().out
    assert "migration aborted" in out
    assert "after restart: granted 2 hosts" in out
    assert "no delayed-write data lost" in out


def test_socket_migration_runs(capsys):
    run_example("socket_migration.py")
    out = capsys.readouterr().out
    assert "server total: 40960 bytes" in out
    assert "ws2" in out


def test_eviction_demo_runs(capsys):
    run_example("eviction_demo.py")
    out = capsys.readouterr().out
    assert "eviction on" in out
    assert "placement" in out and "sprite" in out


def test_checkpoint_restart_demo_runs(capsys):
    run_example("checkpoint_restart_demo.py")
    out = capsys.readouterr().out
    assert "restores: 1" in out
    assert "worker finished: True" in out
    assert "intact=False" in out
    assert "skipping 1 torn image(s)" in out
    assert "hybrid" in out and "clean=True" in out
