"""Pure state-machine unit tests for the Internet server and pipes."""

import pytest

from repro import SpriteCluster
from repro.fs.pipes import _PipeState
from repro.inet import InternetServer, SocketError
from repro.inet.server import _BLOCKED


def make_ip_server():
    cluster = SpriteCluster(workstations=1, start_daemons=False)
    return InternetServer(cluster.hosts[0])


def test_socket_ids_unique():
    server = make_ip_server()
    a = server._dispatch({"op": "socket", "kind": "dgram"})
    b = server._dispatch({"op": "socket", "kind": "stream"})
    assert a != b


def test_bind_and_port_conflict():
    server = make_ip_server()
    a = server._dispatch({"op": "socket", "kind": "dgram"})
    server._dispatch({"op": "bind", "sock": a, "port": 42})
    b = server._dispatch({"op": "socket", "kind": "dgram"})
    with pytest.raises(SocketError, match="in use"):
        server._dispatch({"op": "bind", "sock": b, "port": 42})


def test_sendto_queues_datagram():
    server = make_ip_server()
    rx = server._dispatch({"op": "socket", "kind": "dgram"})
    server._dispatch({"op": "bind", "sock": rx, "port": 1})
    tx = server._dispatch({"op": "socket", "kind": "dgram"})
    server._dispatch({"op": "bind", "sock": tx, "port": 2})
    server._dispatch({"op": "sendto", "sock": tx, "port": 1, "nbytes": 99})
    reply = server._dispatch({"op": "recvfrom", "sock": rx})
    assert reply == {"from": 2, "nbytes": 99}


def test_recv_blocks_until_data():
    server = make_ip_server()
    listener = server._dispatch({"op": "socket", "kind": "stream"})
    server._dispatch({"op": "bind", "sock": listener, "port": 1})
    server._dispatch({"op": "listen", "sock": listener})
    client = server._dispatch({"op": "socket", "kind": "stream"})
    server._dispatch({"op": "connect", "sock": client, "port": 1})
    conn = server._dispatch({"op": "accept", "sock": listener})
    assert server._dispatch({"op": "recv", "sock": conn, "nbytes": 10}) is _BLOCKED
    server._dispatch({"op": "send", "sock": client, "nbytes": 25})
    assert server._dispatch({"op": "recv", "sock": conn, "nbytes": 10}) == 10
    assert server._dispatch({"op": "recv", "sock": conn, "nbytes": 100}) == 15


def test_recv_after_peer_close_is_eof():
    server = make_ip_server()
    listener = server._dispatch({"op": "socket", "kind": "stream"})
    server._dispatch({"op": "bind", "sock": listener, "port": 1})
    server._dispatch({"op": "listen", "sock": listener})
    client = server._dispatch({"op": "socket", "kind": "stream"})
    server._dispatch({"op": "connect", "sock": client, "port": 1})
    conn = server._dispatch({"op": "accept", "sock": listener})
    server._dispatch({"op": "close", "sock": client})
    assert server._dispatch({"op": "recv", "sock": conn, "nbytes": 10}) == 0


def test_close_releases_port():
    server = make_ip_server()
    sock = server._dispatch({"op": "socket", "kind": "dgram"})
    server._dispatch({"op": "bind", "sock": sock, "port": 7})
    server._dispatch({"op": "close", "sock": sock})
    fresh = server._dispatch({"op": "socket", "kind": "dgram"})
    assert server._dispatch({"op": "bind", "sock": fresh, "port": 7}) == 7


def test_operations_on_closed_socket_rejected():
    server = make_ip_server()
    sock = server._dispatch({"op": "socket", "kind": "dgram"})
    server._dispatch({"op": "close", "sock": sock})
    with pytest.raises(SocketError):
        server._dispatch({"op": "bind", "sock": sock, "port": 9})


def test_connect_to_non_listening_socket_refused():
    server = make_ip_server()
    bound = server._dispatch({"op": "socket", "kind": "stream"})
    server._dispatch({"op": "bind", "sock": bound, "port": 5})
    client = server._dispatch({"op": "socket", "kind": "stream"})
    with pytest.raises(SocketError, match="refused"):
        server._dispatch({"op": "connect", "sock": client, "port": 5})


# ----------------------------------------------------------------------
# Pipe refcounting (server side)
# ----------------------------------------------------------------------
def test_pipe_state_refcounts():
    state = _PipeState(pipe_id=1)
    assert state.read_refs == 1 and state.write_refs == 1
    state.read_refs += 1     # a split reference after migration
    state.read_refs -= 1
    assert not state.read_closed
