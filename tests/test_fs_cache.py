"""Unit tests for the client block cache."""

import pytest

from repro.fs import BlockCache


def make_cache(capacity=8, block=4096):
    return BlockCache(capacity_blocks=capacity, block_size=block)


def test_miss_then_hit_after_install():
    cache = make_cache()
    hit, miss = cache.lookup_range("/a", 1, 0, 8192)
    assert (hit, miss) == (0, 2)
    cache.install_range("/a", 1, 0, 8192, dirty=False, now=0.0)
    hit, miss = cache.lookup_range("/a", 1, 0, 8192)
    assert (hit, miss) == (2, 0)


def test_version_mismatch_counts_as_miss():
    cache = make_cache()
    cache.install_range("/a", 1, 0, 4096, dirty=False, now=0.0)
    hit, miss = cache.lookup_range("/a", 2, 0, 4096)
    assert (hit, miss) == (0, 1)


def test_partial_range_hits():
    cache = make_cache()
    cache.install_range("/a", 1, 0, 4096, dirty=False, now=0.0)
    hit, miss = cache.lookup_range("/a", 1, 0, 12288)
    assert (hit, miss) == (1, 2)


def test_lru_eviction_returns_dirty_victims():
    cache = make_cache(capacity=2)
    cache.install_range("/a", 1, 0, 4096, dirty=True, now=1.0)
    cache.install_range("/b", 1, 0, 4096, dirty=False, now=2.0)
    evicted = cache.install_range("/c", 1, 0, 4096, dirty=False, now=3.0)
    # /a was oldest and dirty.
    assert [(b.path, b.dirty) for b in evicted] == [("/a", True)]
    assert len(cache) == 2


def test_clean_eviction_is_silent():
    cache = make_cache(capacity=1)
    cache.install_range("/a", 1, 0, 4096, dirty=False, now=0.0)
    evicted = cache.install_range("/b", 1, 0, 4096, dirty=False, now=1.0)
    assert evicted == []


def test_recency_updated_by_lookup():
    cache = make_cache(capacity=2)
    cache.install_range("/a", 1, 0, 4096, dirty=False, now=0.0)
    cache.install_range("/b", 1, 0, 4096, dirty=False, now=1.0)
    cache.lookup_range("/a", 1, 0, 4096)  # touch /a
    cache.install_range("/c", 1, 0, 4096, dirty=False, now=2.0)
    assert cache.drop_file("/a") == 1  # /a survived, /b was evicted
    assert cache.drop_file("/b") == 0


def test_dirty_accounting_and_take_dirty():
    cache = make_cache()
    cache.install_range("/a", 1, 0, 8192, dirty=True, now=5.0)
    cache.install_range("/b", 1, 0, 4096, dirty=True, now=5.0)
    assert cache.dirty_bytes("/a") == 8192
    assert cache.dirty_bytes() == 12288
    taken = cache.take_dirty("/a")
    assert len(taken) == 2
    assert cache.dirty_bytes("/a") == 0
    assert cache.dirty_bytes("/b") == 4096


def test_rewriting_dirty_block_keeps_original_dirty_since():
    cache = make_cache()
    cache.install_range("/a", 1, 0, 4096, dirty=True, now=1.0)
    cache.install_range("/a", 1, 0, 4096, dirty=True, now=9.0)
    aged = cache.aged_dirty(now=31.5, max_age=30.0)
    assert "/a" in aged


def test_aged_dirty_filters_young_blocks():
    cache = make_cache()
    cache.install_range("/a", 1, 0, 4096, dirty=True, now=0.0)
    cache.install_range("/b", 1, 0, 4096, dirty=True, now=25.0)
    aged = cache.aged_dirty(now=30.0, max_age=30.0)
    assert list(aged) == ["/a"]


def test_drop_file_removes_all_blocks():
    cache = make_cache()
    cache.install_range("/a", 1, 0, 16384, dirty=True, now=0.0)
    assert cache.drop_file("/a") == 4
    assert len(cache) == 0
    assert cache.dirty_bytes() == 0


def test_capacity_validation():
    with pytest.raises(ValueError):
        BlockCache(capacity_blocks=0, block_size=4096)


def test_cached_paths_sorted_unique():
    cache = make_cache()
    cache.install_range("/b", 1, 0, 8192, dirty=False, now=0.0)
    cache.install_range("/a", 1, 0, 4096, dirty=False, now=0.0)
    assert cache.cached_paths() == ["/a", "/b"]
