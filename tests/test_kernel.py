"""Tests for the model kernel: processes, families, signals, calls."""

import pytest

from repro import SpriteCluster
from repro.fs import OpenMode
from repro.kernel import ProcState, signals as sig


def make_cluster(n=3, **kwargs):
    return SpriteCluster(workstations=n, start_daemons=False, **kwargs)


def test_process_runs_and_returns():
    cluster = make_cluster()

    def job(proc):
        yield from proc.compute(2.0)
        return 7

    result = cluster.run_process(cluster.hosts[0], job, name="job")
    assert result == 7
    assert cluster.sim.now >= 2.0


def test_pid_encodes_home_host():
    from repro.kernel import home_of_pid

    cluster = make_cluster()
    host = cluster.hosts[1]

    def job(proc):
        pid = yield from proc.getpid()
        return pid

    pid = cluster.run_process(host, job)
    assert home_of_pid(pid) == host.address


def test_cpu_time_accounted():
    cluster = make_cluster()
    host = cluster.hosts[0]

    def job(proc):
        yield from proc.compute(1.5)
        usage = yield from proc.getrusage()
        return usage["cpu_time"]

    cpu_time = cluster.run_process(host, job)
    assert cpu_time == pytest.approx(1.5, abs=0.05)


def test_two_processes_share_host_cpu():
    cluster = make_cluster()
    host = cluster.hosts[0]
    finish = {}

    def job(proc, label):
        yield from proc.compute(1.0)
        finish[label] = proc.now
        return 0

    pcb_a, _ = host.spawn_process(job, "a", name="a")
    pcb_b, _ = host.spawn_process(job, "b", name="b")
    cluster.run_until_complete(pcb_a.task)
    cluster.run_until_complete(pcb_b.task)
    assert finish["a"] == pytest.approx(2.0, rel=0.1)
    assert finish["b"] == pytest.approx(2.0, rel=0.1)


def test_fork_and_wait():
    cluster = make_cluster()
    host = cluster.hosts[0]

    def child(proc, amount):
        yield from proc.compute(amount)
        yield from proc.exit(42)

    def parent(proc):
        yield from proc.fork(child, 0.5, name="kid")
        status = yield from proc.wait()
        return status.code

    assert cluster.run_process(host, parent) == 42


def test_wait_with_no_children_raises():
    from repro.kernel import NoSuchProcess

    cluster = make_cluster()

    def lonely(proc):
        try:
            yield from proc.wait()
        except NoSuchProcess:
            return "no-children"

    assert cluster.run_process(cluster.hosts[0], lonely) == "no-children"


def test_wait_all_collects_every_child():
    cluster = make_cluster()

    def child(proc, code):
        yield from proc.compute(0.1 * code)
        yield from proc.exit(code)

    def parent(proc):
        for code in (1, 2, 3):
            yield from proc.fork(child, code, name=f"kid{code}")
        statuses = yield from proc.wait_all()
        return sorted(s.code for s in statuses)

    assert cluster.run_process(cluster.hosts[0], parent) == [1, 2, 3]


def test_exec_replaces_program():
    cluster = make_cluster()
    cluster.add_image("/bin/other", 64 * 1024)

    def second(proc, token):
        yield from proc.compute(0.1)
        return token

    def first(proc):
        yield from proc.exec(second, "swapped", image_path="/bin/other")
        raise AssertionError("unreachable after exec")

    assert cluster.run_process(cluster.hosts[0], first) == "swapped"


def test_exec_charges_image_read_through_cache():
    cluster = make_cluster()
    cluster.add_image("/bin/tool", 512 * 1024)
    host = cluster.hosts[0]

    def target(proc):
        return 0
        yield  # pragma: no cover

    def runner(proc):
        yield from proc.exec(target, image_path="/bin/tool")

    cluster.run_process(host, runner)
    first_bytes = cluster.file_server.bytes_read
    cluster.run_process(host, runner)
    # Second exec of the same image hits the client cache.
    assert cluster.file_server.bytes_read == first_bytes
    assert first_bytes >= 512 * 1024


def test_exit_code_via_kill():
    cluster = make_cluster()
    host = cluster.hosts[0]

    def victim(proc):
        yield from proc.compute(100.0)

    def killer(proc, victim_pid):
        yield from proc.compute(0.2)
        yield from proc.kill(victim_pid, sig.SIGTERM)
        return 0

    victim_pcb, _ = host.spawn_process(victim, name="victim")
    killer_pcb, _ = host.spawn_process(killer, victim_pcb.pid, name="killer")
    code = cluster.run_until_complete(victim_pcb.task)
    assert code == 128 + sig.SIGTERM
    assert killer_pcb is not None


def test_caught_signal_does_not_kill():
    cluster = make_cluster()
    host = cluster.hosts[0]

    def tough(proc):
        proc.catch_signal(sig.SIGUSR1)
        yield from proc.compute(1.0)
        return proc.signals_seen()

    def sender(proc, pid):
        yield from proc.compute(0.3)
        yield from proc.kill(pid, sig.SIGUSR1)

    tough_pcb, _ = host.spawn_process(tough, name="tough")
    host.spawn_process(sender, tough_pcb.pid, name="sender")
    seen = cluster.run_until_complete(tough_pcb.task)
    assert seen == [sig.SIGUSR1]


def test_sigkill_cannot_be_caught():
    cluster = make_cluster()
    host = cluster.hosts[0]

    def immortal(proc):
        proc.catch_signal(sig.SIGKILL)
        yield from proc.compute(100.0)

    def assassin(proc, pid):
        yield from proc.compute(0.1)
        yield from proc.kill(pid, sig.SIGKILL)

    target_pcb, _ = host.spawn_process(immortal, name="immortal")
    host.spawn_process(assassin, target_pcb.pid, name="assassin")
    code = cluster.run_until_complete(target_pcb.task)
    assert code == 128 + sig.SIGKILL


def test_signal_to_dead_process_is_noop():
    cluster = make_cluster()
    host = cluster.hosts[0]

    def quick(proc):
        yield from proc.compute(0.1)

    def necromancer(proc, pid):
        yield from proc.compute(1.0)
        yield from proc.kill(pid, sig.SIGTERM)  # already a zombie
        return "ok"

    quick_pcb, _ = host.spawn_process(quick, name="quick")
    necro_pcb, _ = host.spawn_process(necromancer, quick_pcb.pid)
    assert cluster.run_until_complete(necro_pcb.task) == "ok"


def test_cross_host_kill_routed_via_home():
    cluster = make_cluster()
    host_a, host_b = cluster.hosts[0], cluster.hosts[1]

    def victim(proc):
        yield from proc.compute(100.0)

    def killer(proc, pid):
        yield from proc.compute(0.2)
        yield from proc.kill(pid, sig.SIGTERM)

    victim_pcb, _ = host_a.spawn_process(victim, name="victim")
    host_b.spawn_process(killer, victim_pcb.pid, name="killer")
    code = cluster.run_until_complete(victim_pcb.task)
    assert code == 128 + sig.SIGTERM


def test_gethostname_and_time_at_home():
    cluster = make_cluster()
    host = cluster.hosts[2]

    def job(proc):
        name = yield from proc.gethostname()
        time_now = yield from proc.gettimeofday()
        return (name, time_now)

    name, time_now = cluster.run_process(host, job)
    assert name == host.name
    assert time_now > 0


def test_file_io_from_process():
    cluster = make_cluster()

    def writer(proc):
        fd = yield from proc.open("/out.dat", OpenMode.WRITE | OpenMode.CREATE)
        yield from proc.write(fd, 8192)
        yield from proc.close(fd)
        info = yield from proc.stat("/out.dat")
        return info["size"]

    assert cluster.run_process(cluster.hosts[0], writer) == 8192


def test_cwd_relative_paths():
    cluster = make_cluster()
    cluster.add_file("/home/me/notes.txt", size=100)

    def job(proc):
        yield from proc.chdir("/home/me")
        info = yield from proc.stat("notes.txt")
        return info["size"]

    assert cluster.run_process(cluster.hosts[0], job) == 100


def test_ps_lists_running_processes():
    cluster = make_cluster()
    host = cluster.hosts[0]

    def busy(proc):
        yield from proc.compute(10.0)

    def observer(proc):
        yield from proc.compute(0.1)
        listing = yield from proc.ps()
        return [entry["name"] for entry in listing]

    host.spawn_process(busy, name="busy-one")
    obs_pcb, _ = host.spawn_process(observer, name="observer")
    names = cluster.run_until_complete(obs_pcb.task)
    assert "busy-one" in names
    assert "observer" in names


def test_zombie_state_until_reaped():
    cluster = make_cluster()
    host = cluster.hosts[0]

    def child(proc):
        yield from proc.compute(0.1)
        yield from proc.exit(5)

    def parent(proc):
        child_pid = yield from proc.fork(child, name="kid")
        yield from proc.compute(1.0)
        state_before = host.kernel.procs[child_pid].state
        status = yield from proc.wait()
        state_after = host.kernel.procs[child_pid].state
        return (state_before, status.code, state_after)

    before, code, after = cluster.run_process(host, parent)
    assert before == ProcState.ZOMBIE
    assert code == 5
    assert after == ProcState.DEAD


def test_load_average_rises_under_load():
    cluster = make_cluster()
    host = cluster.hosts[0]

    def burner(proc):
        yield from proc.compute(30.0)

    host.spawn_process(burner, name="burner")
    host.loadavg.value = 0.0
    cluster.run(until=20.0)
    for _ in range(20):
        host.loadavg.sample()
    assert host.loadavg.value > 0.1


def test_host_availability_criterion():
    cluster = make_cluster()
    host = cluster.hosts[0]
    host.loadavg.value = 0.0
    cluster.run(until=60.0)
    assert host.is_available()
    host.user_input()
    assert not host.is_available()
