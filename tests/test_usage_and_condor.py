"""Direct tests for the usage simulation and the Condor scheduler."""

from repro import SpriteCluster
from repro.baselines import CondorJob, CondorScheduler
from repro.loadsharing import LoadSharingService
from repro.sim import Sleep, spawn
from repro.workloads import ActivityModel, UsageSimulation


def test_usage_simulation_short_window_produces_report():
    cluster = SpriteCluster(workstations=4, start_daemons=True, seed=8)
    for host in cluster.hosts:
        host.cpu.quantum = 0.25
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.standard_images()
    usage = UsageSimulation(
        cluster, service,
        duration=1800.0,              # half an hour
        activity=ActivityModel(seed=8),
        think_time=60.0,
        batch_probability=0.1,
        seed=8,
    )
    report = usage.run()
    rows = report.rows()
    assert rows["hosts"] == 4
    assert report.interactive_jobs > 0
    assert 0.0 <= report.mean_idle_fraction <= 1.0
    assert report.processor_utilization < 100.0
    # Counts are consistent.
    assert report.migrations_total >= report.remote_execs
    assert report.eviction_victims <= report.migrations_total


def test_usage_simulation_on_multicast_architecture():
    """The usage driver is architecture-agnostic."""
    cluster = SpriteCluster(workstations=3, start_daemons=True, seed=4)
    for host in cluster.hosts:
        host.cpu.quantum = 0.25
    service = LoadSharingService(cluster, architecture="multicast")
    cluster.standard_images()
    # All-day "daytime" activity so the short window sees owner sessions
    # (the default model starts at midnight, when owners are absent).
    activity = ActivityModel(seed=4, day_start_hour=0.0, day_end_hour=24.0)
    usage = UsageSimulation(
        cluster, service, duration=1200.0,
        activity=activity, think_time=45.0,
        batch_probability=0.15, seed=4,
    )
    report = usage.run()
    assert report.interactive_jobs + report.batches > 0


# ----------------------------------------------------------------------
# Condor scheduler units
# ----------------------------------------------------------------------
def test_condor_queues_when_no_idle_host():
    cluster = SpriteCluster(workstations=2, start_daemons=True)
    for host in cluster.hosts:
        host.user_input()          # everyone busy
    cluster.run(until=5.0)
    scheduler = CondorScheduler(cluster, poll_period=2.0)
    scheduler.submit(CondorJob(job_id=0, cpu_seconds=5.0))
    scheduler.start()
    cluster.run(until=20.0)
    assert not scheduler.all_done
    assert len(scheduler.queue) >= 0   # still queued or just starting
    # Owners leave; the idle-input threshold passes; the job runs.
    for host in cluster.hosts:
        host.user_leaves()

    def waiter():
        while not scheduler.all_done:
            yield Sleep(5.0)

    task = spawn(cluster.sim, waiter(), name="waiter")
    cluster.run_until_complete(task)
    assert scheduler.results[0].job.finished_at is not None


def test_condor_turnaround_overhead_metrics():
    cluster = SpriteCluster(workstations=2, start_daemons=True)
    cluster.run(until=45.0)
    scheduler = CondorScheduler(cluster, checkpoint_period=10.0)
    scheduler.submit(CondorJob(job_id=0, cpu_seconds=30.0, image_bytes=512 * 1024))

    def waiter():
        scheduler.start()
        while not scheduler.all_done:
            yield Sleep(5.0)

    task = spawn(cluster.sim, waiter(), name="waiter")
    cluster.run_until_complete(task)
    result = scheduler.results[0]
    assert result.turnaround >= 30.0
    assert result.overhead_ratio >= 1.0
    assert result.job.checkpoints >= 2


def test_condor_two_jobs_share_two_hosts():
    cluster = SpriteCluster(workstations=3, start_daemons=True)
    cluster.run(until=45.0)
    scheduler = CondorScheduler(cluster, poll_period=1.0)
    for i in range(2):
        scheduler.submit(CondorJob(job_id=i, cpu_seconds=10.0))

    def waiter():
        scheduler.start()
        while not scheduler.all_done:
            yield Sleep(2.0)

    task = spawn(cluster.sim, waiter(), name="waiter")
    start = cluster.sim.now
    cluster.run_until_complete(task)
    elapsed = cluster.sim.now - start
    # Ran concurrently: well under 2x10s + polling slack.
    assert elapsed < 18.0
    assert len(scheduler.results) == 2
