"""Unit tests for resources and the round-robin CPU model."""

import pytest

from repro.sim import Cpu, Interrupted, Resource, Simulator, Sleep, spawn


def test_resource_serializes_holders():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def holder(label, duration):
        yield res.acquire()
        start = sim.now
        try:
            yield Sleep(duration)
        finally:
            res.release()
        spans.append((label, start, sim.now))

    spawn(sim, holder("a", 2.0))
    spawn(sim, holder("b", 3.0))
    sim.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 5.0)]


def test_resource_capacity_two_allows_overlap():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def holder(label):
        yield from res.hold(2.0)
        done.append((label, sim.now))

    for label in "abc":
        spawn(sim, holder(label))
    sim.run()
    assert done == [("a", 2.0), ("b", 2.0), ("c", 4.0)]


def test_release_when_free_is_an_error():
    # ValueError, not RuntimeError: release() is reachable from RPC
    # handlers, and exception-flow only lets the programmer-error
    # builtins escape the hierarchy entry points (regression for the
    # live-tree fix that rule surfaced).
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(ValueError):
        res.release()


def test_acquire_cancelled_by_interrupt_leaves_queue_clean():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def hog():
        yield from res.hold(10.0)

    def impatient():
        try:
            yield res.acquire()
        except Interrupted:
            return "gave-up"

    spawn(sim, hog())
    waiter = spawn(sim, impatient())
    sim.schedule(1.0, waiter.interrupt)
    sim.run()
    assert waiter.result == "gave-up"
    assert res.queue_length == 0


def test_utilization_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        yield from res.hold(5.0)
        yield Sleep(5.0)

    spawn(sim, holder())
    sim.run()
    assert res.utilization() == pytest.approx(0.5)


def test_cpu_single_consumer_takes_demand_seconds():
    sim = Simulator()
    cpu = Cpu(sim, quantum=0.01)

    def job():
        yield from cpu.consume(1.0)
        return sim.now

    task = spawn(sim, job())
    sim.run()
    assert task.result == pytest.approx(1.0)


def test_cpu_two_consumers_share_fairly():
    sim = Simulator()
    cpu = Cpu(sim, quantum=0.01)
    finish = {}

    def job(label, demand):
        yield from cpu.consume(demand)
        finish[label] = sim.now

    spawn(sim, job("a", 1.0))
    spawn(sim, job("b", 1.0))
    sim.run()
    # Each needs 1s of a shared core: both finish near 2s.
    assert finish["a"] == pytest.approx(2.0, abs=0.05)
    assert finish["b"] == pytest.approx(2.0, abs=0.05)


def test_cpu_speed_scales_time():
    sim = Simulator()
    cpu = Cpu(sim, quantum=0.01, speed=2.0)

    def job():
        yield from cpu.consume(1.0)
        return sim.now

    task = spawn(sim, job())
    sim.run()
    assert task.result == pytest.approx(0.5)


def test_cpu_short_job_not_starved_by_long_job():
    sim = Simulator()
    cpu = Cpu(sim, quantum=0.01)
    finish = {}

    def job(label, demand):
        yield from cpu.consume(demand)
        finish[label] = sim.now

    spawn(sim, job("long", 10.0))
    spawn(sim, job("short", 0.1))
    sim.run()
    # With round-robin sharing the short job finishes near 0.2s, not
    # after the long job.
    assert finish["short"] < 0.5
    assert finish["long"] == pytest.approx(10.1, abs=0.1)


def test_cpu_runnable_counter():
    sim = Simulator()
    cpu = Cpu(sim, quantum=0.01)
    samples = []

    def job():
        yield from cpu.consume(1.0)

    def sampler():
        yield Sleep(0.5)
        samples.append(cpu.runnable)
        yield Sleep(2.0)
        samples.append(cpu.runnable)

    spawn(sim, job())
    spawn(sim, job())
    spawn(sim, sampler())
    sim.run()
    assert samples[0] == 2
    assert samples[1] == 0


def test_cpu_interrupt_releases_core():
    sim = Simulator()
    cpu = Cpu(sim, quantum=0.01)

    def victim():
        yield from cpu.consume(100.0)

    def successor():
        yield Sleep(1.0)
        yield from cpu.consume(1.0)
        return sim.now

    victim_task = spawn(sim, victim())
    succ = spawn(sim, successor())
    sim.schedule(1.0, victim_task.interrupt)
    sim.run()
    assert succ.result == pytest.approx(2.0, abs=0.05)
    assert cpu.runnable == 0


def test_cpu_rejects_negative_demand():
    sim = Simulator()
    cpu = Cpu(sim)

    def job():
        yield from cpu.consume(-1.0)

    spawn(sim, job(), name="bad")
    with pytest.raises(ValueError):
        sim.run()
