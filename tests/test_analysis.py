"""Tests for the AST invariant linter (``repro.analysis``).

Each rule gets fixture snippets for the positive (finding), negative
(clean) and pragma (suppressed) paths; the baseline path is covered via
:class:`repro.analysis.Baseline`.  Live-tree tests assert the shipped
tree is lint-clean and that an injected violation fails with a
file:line finding.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import subprocess
import sys
import textwrap

from repro.analysis import Baseline, run_lint
from repro.cli import main as cli_main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC_REPRO = REPO_ROOT / "src" / "repro"


# ----------------------------------------------------------------------
# Fixture-tree helpers
# ----------------------------------------------------------------------
def make_tree(tmp_path, files):
    """Write {relpath: source} under tmp_path and return the root."""
    root = tmp_path / "tree"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def findings_of(tmp_path, files, rules):
    root = make_tree(tmp_path, files)
    return run_lint(root, rule_ids=rules).findings


def rule_ids(findings):
    return [finding.rule for finding in findings]


# ----------------------------------------------------------------------
# determinism-wallclock
# ----------------------------------------------------------------------
def test_wallclock_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mod.py": """\
            import time

            def stamp():
                return time.time()
            """
        },
        ["determinism-wallclock"],
    )
    assert rule_ids(findings) == ["determinism-wallclock"]
    assert findings[0].line == 4


def test_wallclock_negative(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mod.py": """\
            def stamp(engine):
                return engine.now
            """
        },
        ["determinism-wallclock"],
    )
    assert findings == []


def test_wallclock_pragma(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "mod.py": """\
            import time

            def stamp():
                # lint: disable=determinism-wallclock(offline metadata)
                return time.time()
            """
        },
    )
    result = run_lint(root, rule_ids=["determinism-wallclock"])
    assert result.findings == []
    assert result.suppressed == 1


# ----------------------------------------------------------------------
# determinism-global-random
# ----------------------------------------------------------------------
def test_global_random_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mod.py": """\
            import random
            from random import choice
            import numpy as np

            def roll():
                return np.random.rand()
            """
        },
        ["determinism-global-random"],
    )
    assert len(findings) == 3


def test_global_random_negative(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            # a *relative* `from .random import` is the sim package's own
            # substream module, not stdlib random
            "pkg/__init__.py": "from .random import RandomStreams\n",
            "pkg/random.py": "class RandomStreams:\n    pass\n",
            "pkg/use.py": """\
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """,
        },
        ["determinism-global-random"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# determinism-rng-stream / determinism-stream-collision
# ----------------------------------------------------------------------
def test_rng_stream_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mod.py": """\
            def draw(rng, name):
                return rng.stream(name).random()
            """
        },
        ["determinism-rng-stream"],
    )
    assert rule_ids(findings) == ["determinism-rng-stream"]


def test_rng_stream_negative_resolvable(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mod.py": """\
            STREAM = "mod.noise"

            class Thing:
                LOCAL = "mod.local"

                def draw(self, rng, name="mod.default"):
                    a = rng.stream("mod.literal")
                    b = rng.stream(STREAM)
                    c = rng.stream(self.LOCAL)
                    d = rng.stream(name)
                    return a, b, c, d
            """
        },
        ["determinism-rng-stream"],
    )
    assert findings == []


def test_stream_collision_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "one.py": "def f(rng):\n    return rng.stream('shared.noise')\n",
            "two.py": "def g(rng):\n    return rng.stream('shared.noise')\n",
        },
        ["determinism-stream-collision"],
    )
    assert len(findings) == 2
    assert {finding.rel for finding in findings} == {"one.py", "two.py"}


def test_stream_collision_negative(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "one.py": "def f(rng):\n    return rng.stream('one.noise')\n",
            "two.py": "def g(rng):\n    return rng.stream('two.noise')\n",
        },
        ["determinism-stream-collision"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# determinism-unordered-iter
# ----------------------------------------------------------------------
def test_unordered_iter_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mod.py": """\
            def flush(lan, inboxes):
                for address in inboxes.keys():
                    lan.send(address)
            """
        },
        ["determinism-unordered-iter"],
    )
    assert rule_ids(findings) == ["determinism-unordered-iter"]
    assert "send" in findings[0].message


def test_unordered_iter_set_literal_yield(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mod.py": """\
            def gen(a, b):
                for x in {a, b}:
                    yield x
            """
        },
        ["determinism-unordered-iter"],
    )
    assert rule_ids(findings) == ["determinism-unordered-iter"]


def test_unordered_iter_negative(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mod.py": """\
            def flush(lan, inboxes, queue):
                for address in sorted(inboxes.keys()):
                    lan.send(address)
                for item in queue:          # a list: ordered
                    lan.send(item)
                for name in inboxes.keys():  # no effect call in body
                    print(name)
            """
        },
        ["determinism-unordered-iter"],
    )
    assert findings == []


def test_unordered_iter_pragma(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "mod.py": """\
            def flush(lan, inboxes):
                # lint: disable=determinism-unordered-iter(single-entry dict)
                for address in inboxes.keys():
                    lan.send(address)
            """
        },
    )
    result = run_lint(root, rule_ids=["determinism-unordered-iter"])
    assert result.findings == []
    assert result.suppressed == 1


# ----------------------------------------------------------------------
# obs-unguarded-emit
# ----------------------------------------------------------------------
def test_unguarded_emit_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mod.py": """\
            class Manager:
                def work(self):
                    self.tracer.emit(1.0, "mgr", "work")
            """
        },
        ["obs-unguarded-emit"],
    )
    assert rule_ids(findings) == ["obs-unguarded-emit"]


def test_unguarded_emit_guarded_forms(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mod.py": """\
            class Manager:
                def direct(self):
                    if self.tracer.enabled:
                        self.tracer.emit(1.0, "mgr", "direct")

                def early_exit(self):
                    if not self.tracer.enabled:
                        return
                    self.tracer.emit(1.0, "mgr", "early")

                def none_check(self, root):
                    if root is not None:
                        self.spans.record(root, "none")

                def short_circuit(self):
                    self.tracer.enabled and self.tracer.emit(1.0, "m", "sc")
            """
        },
        ["obs-unguarded-emit"],
    )
    assert findings == []


def test_unguarded_emit_caller_pragma(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "mod.py": """\
            class Manager:
                def helper(self):
                    # span-guard: caller
                    self.spans.record(1.0, "mgr")
            """
        },
    )
    result = run_lint(root, rule_ids=["obs-unguarded-emit"])
    assert result.findings == []
    assert result.suppressed == 1


def test_unguarded_emit_window_false_negative_closed(tmp_path):
    # The old regex tool accepted any line matching "is not None" within
    # 5 lines above the emit, even when it guards something unrelated.
    # The AST rule requires the guard to actually dominate the call.
    findings = findings_of(
        tmp_path,
        {
            "mod.py": """\
            class Manager:
                def work(self, limit):
                    if limit is not None:
                        limit += 1
                    self.tracer.emit(1.0, "mgr", "work")
            """
        },
        ["obs-unguarded-emit"],
    )
    assert rule_ids(findings) == ["obs-unguarded-emit"]


def test_unguarded_emit_exempt_dirs(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "obs/export.py": """\
            def dump(tracer):
                tracer.emit(1.0, "x", "y")
            """,
            "sim/trace.py": """\
            def emit_all(tracer):
                tracer.emit(1.0, "x", "y")
            """,
        },
        ["obs-unguarded-emit"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# rpc rules
# ----------------------------------------------------------------------
_RPC_OK = """\
class Service:
    NAME = "svc.echo"

    def install(self, rpc):
        rpc.register(self.NAME, self._rpc_echo)

    def _rpc_echo(self, args):
        yield
        return args

    def use(self, rpc, dst):
        return (yield from rpc.call(dst, "svc.echo", None))
"""


def test_rpc_conformance_negative(tmp_path):
    findings = findings_of(
        tmp_path,
        {"svc.py": _RPC_OK},
        [
            "rpc-unregistered-service",
            "rpc-unused-service",
            "rpc-handler-not-generator",
        ],
    )
    assert findings == []


def test_rpc_unregistered_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "svc.py": """\
            def use(rpc, dst):
                return (yield from rpc.call(dst, "svc.missing", None))
            """
        },
        ["rpc-unregistered-service"],
    )
    assert rule_ids(findings) == ["rpc-unregistered-service"]
    assert "svc.missing" in findings[0].message


def test_rpc_unused_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "svc.py": """\
            class Service:
                def install(self, rpc):
                    rpc.register("svc.dead", self._rpc_dead)

                def _rpc_dead(self, args):
                    yield
            """
        },
        ["rpc-unused-service"],
    )
    assert rule_ids(findings) == ["rpc-unused-service"]


def test_rpc_handler_not_generator_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "svc.py": """\
            class Service:
                def install(self, rpc):
                    rpc.register("svc.bad", self._rpc_bad)

                def _rpc_bad(self, args):
                    return args

                def use(self, rpc, dst):
                    return (yield from rpc.call(dst, "svc.bad", None))
            """
        },
        ["rpc-handler-not-generator"],
    )
    assert rule_ids(findings) == ["rpc-handler-not-generator"]


def test_rpc_idempotent_readonly_handler_is_clean(tmp_path):
    # idempotent=True is the legitimate opt-out for pure reads (like
    # mig.cor_fetch): no self mutation, no finding.
    findings = findings_of(
        tmp_path,
        {
            "svc.py": """\
            class Service:
                def install(self, rpc):
                    rpc.register("svc.read", self._rpc_read, idempotent=True)

                def _rpc_read(self, args):
                    size = len(self.table)
                    yield
                    return size

                def use(self, rpc, dst):
                    return (yield from rpc.call(dst, "svc.read", None))
            """
        },
        ["rpc-idempotency"],
    )
    assert findings == []


def test_rpc_idempotent_mutating_handler_positive(tmp_path):
    # A handler that opts out of the dedup cache but writes self state
    # double-applies under a duplicating link: flagged.
    findings = findings_of(
        tmp_path,
        {
            "svc.py": """\
            class Service:
                def install(self, rpc):
                    rpc.register("svc.bump", self._rpc_bump, idempotent=True)

                def _rpc_bump(self, args):
                    self.counter += 1
                    yield
                    return self.counter

                def use(self, rpc, dst):
                    return (yield from rpc.call(dst, "svc.bump", None))
            """
        },
        ["rpc-idempotency"],
    )
    assert rule_ids(findings) == ["rpc-idempotency"]
    assert "_rpc_bump" in findings[0].message


def test_rpc_idempotent_mutator_call_positive(tmp_path):
    # In-place mutator calls on self attributes count as writes too.
    findings = findings_of(
        tmp_path,
        {
            "svc.py": """\
            class Service:
                def install(self, rpc):
                    rpc.register("svc.note", self._rpc_note, idempotent=True)

                def _rpc_note(self, args):
                    self.seen.add(args)
                    yield
                    return True

                def use(self, rpc, dst):
                    return (yield from rpc.call(dst, "svc.note", None))
            """
        },
        ["rpc-idempotency"],
    )
    assert rule_ids(findings) == ["rpc-idempotency"]


def test_rpc_non_idempotent_mutating_handler_is_clean(tmp_path):
    # Without the opt-out the dedup cache replays the original reply,
    # so a mutating handler is exactly what the cache is for: no flag.
    findings = findings_of(
        tmp_path,
        {
            "svc.py": """\
            class Service:
                def install(self, rpc):
                    rpc.register("svc.bump", self._rpc_bump)

                def _rpc_bump(self, args):
                    self.counter += 1
                    yield
                    return self.counter

                def use(self, rpc, dst):
                    return (yield from rpc.call(dst, "svc.bump", None))
            """
        },
        ["rpc-idempotency"],
    )
    assert findings == []


def test_rpc_forwarding_helper_resolution(tmp_path):
    # A helper that forwards its own parameter into the service slot
    # (like FsServer._callback) must have its call-site literals counted
    # as calls, and its own body must not be flagged as unresolvable.
    findings = findings_of(
        tmp_path,
        {
            "server.py": """\
            class Server:
                def _callback(self, client, service, args):
                    return (yield from self.rpc.call(client, service, args))

                def notify(self, client):
                    yield from self._callback(client, "cli.poke", None)
            """,
            "client.py": """\
            class Client:
                def install(self, rpc):
                    rpc.register("cli.poke", self._rpc_poke)

                def _rpc_poke(self, args):
                    yield
            """,
        },
        ["rpc-unregistered-service", "rpc-unused-service"],
    )
    assert findings == []


def test_rpc_forwarding_multi_hop_resolution(tmp_path):
    # Call-graph-based forwarding resolution: a helper calling a helper
    # calling `.call` resolves literals through BOTH hops — the old
    # one-level heuristic could not see `notify -> _relay -> _callback`.
    findings = findings_of(
        tmp_path,
        {
            "server.py": """\
            class Server:
                def _callback(self, client, service, args):
                    return (yield from self.rpc.call(client, service, args))

                def _relay(self, client, service):
                    yield from self._callback(client, service, None)

                def notify(self, client):
                    yield from self._relay(client, "cli.poke")
            """,
            "client.py": """\
            class Client:
                def install(self, rpc):
                    rpc.register("cli.poke", self._rpc_poke)

                def _rpc_poke(self, args):
                    yield
            """,
        },
        ["rpc-unregistered-service", "rpc-unused-service"],
    )
    assert findings == []


def test_rpc_forwarding_multi_hop_catches_typo(tmp_path):
    # The same chain with a typo'd literal at the outermost hop must
    # still produce an unregistered-service finding at that call site.
    findings = findings_of(
        tmp_path,
        {
            "server.py": """\
            class Server:
                def _callback(self, client, service, args):
                    return (yield from self.rpc.call(client, service, args))

                def _relay(self, client, service):
                    yield from self._callback(client, service, None)

                def notify(self, client):
                    yield from self._relay(client, "cli.pokee")
            """,
            "client.py": """\
            class Client:
                def install(self, rpc):
                    rpc.register("cli.poke", self._rpc_poke)
                    yield from self.rpc.call(0, "cli.poke", None)

                def _rpc_poke(self, args):
                    yield
            """,
        },
        ["rpc-unregistered-service"],
    )
    assert rule_ids(findings) == ["rpc-unregistered-service"]
    assert "cli.pokee" in findings[0].message
    assert findings[0].rel == "server.py"


# ----------------------------------------------------------------------
# txn rules
# ----------------------------------------------------------------------
_TXN_PY = """\
TXN_STEPS = ("negotiated", "frozen", "committed")


class MigrationTxn:
    pass
"""


def test_txn_unknown_step_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "migration/txn.py": _TXN_PY,
            "migration/mechanism.py": """\
            def drive(txn):
                txn.step("frozen")
                txn.step("totally-bogus")
            """,
        },
        ["txn-unknown-step"],
    )
    assert rule_ids(findings) == ["txn-unknown-step"]
    assert "totally-bogus" in findings[0].message


def test_txn_unknown_step_journal_helper(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "migration/txn.py": _TXN_PY,
            "migration/mechanism.py": """\
            class Mechanism:
                def go(self, txn, epoch):
                    self._journal_step(txn, epoch, "not-a-step")
            """,
        },
        ["txn-unknown-step"],
    )
    assert rule_ids(findings) == ["txn-unknown-step"]


def test_txn_unknown_step_negative(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "migration/txn.py": _TXN_PY,
            "migration/mechanism.py": """\
            def drive(txn):
                txn.step("negotiated")
                txn.did("frozen")
            """,
        },
        ["txn-unknown-step"],
    )
    assert findings == []


def test_txn_undo_coverage_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "migration/mechanism.py": """\
            def do_step(txn, ticket):
                txn.push_undo("ticket", ticket=ticket)
                txn.push_undo("orphan", x=1)

            def rollback(entry):
                if entry.kind == "ticket":
                    return "undo-ticket"
                if entry.kind == "ghost":
                    return "dead-arm"
            """
        },
        ["txn-undo-coverage"],
    )
    assert sorted(rule_ids(findings)) == [
        "txn-undo-coverage",
        "txn-undo-coverage",
    ]
    messages = " ".join(finding.message for finding in findings)
    assert "orphan" in messages and "ghost" in messages


def test_txn_undo_coverage_negative(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "migration/mechanism.py": """\
            def do_step(txn, ticket):
                txn.push_undo("ticket", ticket=ticket)

            def rollback(entry):
                if entry.kind == "ticket":
                    return "undo-ticket"
            """
        },
        ["txn-undo-coverage"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# exception-flow (interprocedural successor of error-hierarchy)
# ----------------------------------------------------------------------
_NET_ERRORS = """\
class RpcError(Exception):
    pass


class HostDownError(RpcError):
    pass
"""

_FS_ERRORS = """\
class FsError(Exception):
    pass
"""


def test_exception_flow_direct_raise_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "net/errors.py": _NET_ERRORS,
            "fs/errors.py": _FS_ERRORS,
            "net/lan.py": """\
            def deliver(ok):
                if not ok:
                    raise RuntimeError("inbox full")
            """,
        },
        ["exception-flow"],
    )
    assert rule_ids(findings) == ["exception-flow"]
    assert "RuntimeError" in findings[0].message
    assert findings[0].rel == "net/lan.py"
    assert findings[0].line == 3


def test_exception_flow_negative(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "net/errors.py": _NET_ERRORS,
            "fs/errors.py": _FS_ERRORS,
            "migration/mechanism.py": """\
            from ..net.errors import RpcError


            class MigrationRefused(RpcError):
                pass


            def refuse(reason, flag):
                if flag:
                    raise ValueError("programmer error is allowed")
                raise MigrationRefused(reason)
            """,
            "kernel/other.py": """\
            def outside_scope():
                raise RuntimeError("kernel/ is not in scope for this rule")
            """,
        },
        ["exception-flow"],
    )
    assert findings == []


def test_exception_flow_transitive_escape(tmp_path):
    """A builtin raised two calls below a scoped entry point is caught
    even though the raise site itself lives outside the scoped dirs."""
    findings = findings_of(
        tmp_path,
        {
            "net/errors.py": _NET_ERRORS,
            "fs/errors.py": _FS_ERRORS,
            "kernel/helper.py": """\
            def inner(flag):
                if flag:
                    raise OSError("deep failure")


            def outer(flag):
                inner(flag)
            """,
            "net/lan.py": """\
            from ..kernel.helper import outer


            def deliver(flag):
                outer(flag)
            """,
        },
        ["exception-flow"],
    )
    assert rule_ids(findings) == ["exception-flow"]
    assert findings[0].rel == "kernel/helper.py"
    assert findings[0].line == 3
    assert "escapes `deliver`" in findings[0].message


def test_exception_flow_caught_by_hierarchy_ancestor(tmp_path):
    """try/except filtering is hierarchy-aware: catching the tree base
    class (or Exception) stops the escape, both for tree classes and
    builtins."""
    findings = findings_of(
        tmp_path,
        {
            "net/errors.py": _NET_ERRORS,
            "fs/errors.py": _FS_ERRORS,
            "kernel/helper.py": """\
            def fail():
                raise OSError("handled below")
            """,
            "net/lan.py": """\
            from ..kernel.helper import fail


            def deliver():
                try:
                    fail()
                except OSError:
                    return None
            """,
        },
        ["exception-flow"],
    )
    assert findings == []


def test_exception_flow_handler_reraise_escapes(tmp_path):
    """A bare `raise` inside an except clause re-raises what the
    handler caught, so the exception still escapes."""
    findings = findings_of(
        tmp_path,
        {
            "net/errors.py": _NET_ERRORS,
            "fs/errors.py": _FS_ERRORS,
            "net/lan.py": """\
            def deliver():
                try:
                    raise OSError("transient")
                except OSError:
                    raise
            """,
        },
        ["exception-flow"],
    )
    assert rule_ids(findings) == ["exception-flow"]
    assert findings[0].line == 3


def test_exception_flow_registered_handler_is_entry_point(tmp_path):
    """An RPC handler outside the scoped dirs is still an entry point:
    its transitive escapes are checked."""
    findings = findings_of(
        tmp_path,
        {
            "net/errors.py": _NET_ERRORS,
            "fs/errors.py": _FS_ERRORS,
            "baselines/surrogate.py": """\
            class Surrogate:
                def attach(self, port):
                    port.register("surrogate.exec", self._handler)

                def _handler(self, src, payload):
                    raise RuntimeError("boom")
                    yield None
            """,
        },
        ["exception-flow"],
    )
    assert rule_ids(findings) == ["exception-flow"]
    assert findings[0].rel == "baselines/surrogate.py"
    assert "RuntimeError" in findings[0].message


def test_exception_flow_pragma(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "net/errors.py": _NET_ERRORS,
            "fs/errors.py": _FS_ERRORS,
            "net/lan.py": """\
            def deliver(ok):
                if not ok:
                    # lint: disable=exception-flow(model invariant violation)
                    raise RuntimeError("inbox full")
            """,
        },
    )
    result = run_lint(root, rule_ids=["exception-flow"])
    assert result.findings == []
    assert result.suppressed == 1


# ----------------------------------------------------------------------
# state-module-mutable
# ----------------------------------------------------------------------
def test_module_state_counter_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "fs/streams.py": """\
            import itertools

            _stream_ids = itertools.count(1)
            """
        },
        ["state-module-mutable"],
    )
    assert rule_ids(findings) == ["state-module-mutable"]
    assert findings[0].line == 3
    assert "sim.state.counter" in findings[0].message


def test_module_state_mutable_container_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mod.py": """\
            _cache = {}
            pending: list = []
            """
        },
        ["state-module-mutable"],
    )
    assert rule_ids(findings) == ["state-module-mutable"] * 2
    assert [f.line for f in findings] == [1, 2]


def test_module_state_global_statement_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mod.py": """\
            _total = 0

            def bump():
                global _total
                _total += 1
            """
        },
        ["state-module-mutable"],
    )
    assert rule_ids(findings) == ["state-module-mutable"]
    assert "global _total" in findings[0].message


def test_module_state_negative(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mod.py": """\
            __all__ = ["Widget", "SIZES"]

            SIZES = {"small": 1, "large": 2}
            NAMES = sorted(SIZES)
            LIMIT = 16

            class Widget:
                registry = {}

                def __init__(self, sim):
                    self._ids = sim.state.counter("widget.ids")
                    self.cache = {}
            """
        },
        ["state-module-mutable"],
    )
    assert findings == []


def test_module_state_pragma(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "mod.py": """\
            # lint: disable=state-module-mutable(deliberate process registry)
            _registry = {}
            """
        },
    )
    result = run_lint(root, rule_ids=["state-module-mutable"])
    assert result.findings == []
    assert result.suppressed == 1


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
def test_baseline_filters_known_findings(tmp_path):
    files = {
        "mod.py": """\
        import time

        def stamp():
            return time.time()
        """
    }
    root = make_tree(tmp_path, files)
    first = run_lint(root, rule_ids=["determinism-wallclock"])
    assert len(first.findings) == 1

    baseline = Baseline.from_findings(first.findings)
    second = run_lint(
        root, rule_ids=["determinism-wallclock"], baseline=baseline
    )
    assert second.findings == []
    assert second.baselined == 1


def test_baseline_does_not_absorb_new_duplicates(tmp_path):
    files = {
        "mod.py": """\
        import time

        def stamp():
            return time.time()
        """
    }
    root = make_tree(tmp_path, files)
    baseline = Baseline.from_findings(
        run_lint(root, rule_ids=["determinism-wallclock"]).findings
    )
    # add a second, new violation: the baseline must not cover it
    (root / "mod2.py").write_text(
        "import time\n\ndef stamp2():\n    return time.time()\n"
    )
    result = run_lint(
        root, rule_ids=["determinism-wallclock"], baseline=baseline
    )
    assert len(result.findings) == 1
    assert result.findings[0].rel == "mod2.py"
    assert result.baselined == 1


def test_baseline_round_trips_through_json(tmp_path):
    files = {"mod.py": "import time\nt = time.time()\n"}
    root = make_tree(tmp_path, files)
    findings = run_lint(root, rule_ids=["determinism-wallclock"]).findings
    baseline = Baseline.from_findings(findings)
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == baseline.entries


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_lint_fixture_tree_exit_codes(tmp_path, capsys):
    root = make_tree(
        tmp_path,
        {"mod.py": "import time\n\ndef f():\n    return time.time()\n"},
    )
    code = cli_main(["lint", "--path", str(root)])
    out = capsys.readouterr().out
    assert code == 1
    assert "mod.py:4" in out
    assert "[determinism-wallclock]" in out


def test_cli_lint_rule_filter(tmp_path, capsys):
    root = make_tree(
        tmp_path,
        {"mod.py": "import time\n\ndef f():\n    return time.time()\n"},
    )
    code = cli_main(
        ["lint", "--path", str(root), "--rule", "obs-unguarded-emit"]
    )
    capsys.readouterr()
    assert code == 0


def test_cli_lint_json_output(tmp_path, capsys):
    root = make_tree(
        tmp_path,
        {"mod.py": "import time\n\ndef f():\n    return time.time()\n"},
    )
    code = cli_main(["lint", "--path", str(root), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["findings"][0]["rule"] == "determinism-wallclock"
    assert payload["findings"][0]["line"] == 4


def test_cli_lint_unknown_rule(tmp_path, capsys):
    code = cli_main(["lint", "--rule", "no-such-rule"])
    err = capsys.readouterr().err
    assert code == 2
    assert "no-such-rule" in err


def test_cli_lint_list_rules(capsys):
    code = cli_main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule in (
        "determinism-wallclock",
        "obs-unguarded-emit",
        "rpc-unregistered-service",
        "txn-unknown-step",
        "exception-flow",
        "coroutine-protocol",
        "determinism-taint",
        "snapshot-safety",
    ):
        assert rule in out


# ----------------------------------------------------------------------
# mig-shared-packaging
# ----------------------------------------------------------------------
_PACKAGING_STUB = """\
def export_streams(pcb):
    pass
"""


def test_packaging_divergent_loop_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "migration/packaging.py": _PACKAGING_STUB,
            "checkpoint/writer.py": """\
            def snapshot(pcb, target):
                for fd in sorted(pcb.streams):
                    target.export_stream(pcb.streams[fd])
            """,
        },
        ["mig-shared-packaging"],
    )
    assert rule_ids(findings) == ["mig-shared-packaging"]
    assert "export_stream loop" in findings[0].message


def test_packaging_handrolled_payload_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "migration/packaging.py": _PACKAGING_STUB,
            "migration/other.py": """\
            def payload(pcb, ticket, streams):
                return {"pcb": pcb, "ticket": ticket, "streams": streams}
            """,
        },
        ["mig-shared-packaging"],
    )
    assert rule_ids(findings) == ["mig-shared-packaging"]
    assert "install payload" in findings[0].message


def test_packaging_fork_by_dropped_import_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "migration/packaging.py": _PACKAGING_STUB,
            "migration/mechanism.py": """\
            def migrate(pcb):
                return pcb
            """,
        },
        ["mig-shared-packaging"],
    )
    assert rule_ids(findings) == ["mig-shared-packaging"]
    assert "forked" in findings[0].message


def test_packaging_negative(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "migration/packaging.py": _PACKAGING_STUB,
            "migration/mechanism.py": """\
            from .packaging import export_streams

            def migrate(pcb):
                return export_streams(pcb)
            """,
            "checkpoint/image.py": """\
            from ..migration import packaging

            def image(pcb):
                return packaging.export_streams(pcb)
            """,
        },
        ["mig-shared-packaging"],
    )
    assert findings == []


def test_packaging_inert_without_shared_module(tmp_path):
    # Fixture trees that predate the shared module must stay clean.
    findings = findings_of(
        tmp_path,
        {
            "migration/mechanism.py": """\
            def migrate(pcb, target):
                for fd in sorted(pcb.streams):
                    target.export_stream(pcb.streams[fd])
            """,
        },
        ["mig-shared-packaging"],
    )
    assert findings == []


def test_packaging_pragma(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "migration/packaging.py": _PACKAGING_STUB,
            "checkpoint/writer.py": """\
            def snapshot(pcb, target):
                for fd in sorted(pcb.streams):
                    # lint: disable=mig-shared-packaging(fixture copy)
                    target.export_stream(pcb.streams[fd])
            """,
        },
    )
    result = run_lint(root, rule_ids=["mig-shared-packaging"])
    assert result.findings == []
    assert result.suppressed == 1


# ----------------------------------------------------------------------
# live tree
# ----------------------------------------------------------------------
def test_live_tree_is_lint_clean(capsys):
    code = cli_main(["lint"])
    out = capsys.readouterr().out
    assert code == 0, f"live tree has lint findings:\n{out}"


def test_live_tree_injected_violation_fails(tmp_path, capsys):
    # Copy the real tree, inject one wall-clock read into the kernel,
    # and require a non-zero exit with a file:line finding.
    copy = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, copy)
    target = copy / "kernel" / "kernel.py"
    target.write_text(
        target.read_text()
        + "\n\nimport time\n\n\ndef _injected():\n    return time.time()\n"
    )
    code = cli_main(["lint", "--path", str(copy)])
    out = capsys.readouterr().out
    assert code == 1
    assert "kernel/kernel.py" in out
    assert "[determinism-wallclock]" in out


def test_trace_guard_shim_cli():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_trace_guards.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "trace guards ok" in proc.stdout


# ----------------------------------------------------------------------
# obs-span-catalogue
# ----------------------------------------------------------------------
def test_span_catalogue_positive_inline_string(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mech.py": """\
            def go(self):
                span = self.spans.start("mig.bogus_phase", "mig:ws0")
                span.finish(1.0)
            """
        },
        ["obs-span-catalogue"],
    )
    assert rule_ids(findings) == ["obs-span-catalogue"]
    assert "mig.bogus_phase" in findings[0].message


def test_span_catalogue_negative_constant_and_literal(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "mech.py": """\
            from repro.obs.spans import MIG_FREEZE

            def go(self, obs):
                obs.spans.start(MIG_FREEZE, "mig:ws0")
                obs.spans.record("rpc.call", "rpc:ws0", 0.0, 1.0)
            """
        },
        ["obs-span-catalogue"],
    )
    assert findings == []


def test_span_catalogue_forwarded_param(tmp_path):
    # A wrapper that forwards its `name` parameter is clean only when
    # every same-module caller passes a catalogued name.
    bad = findings_of(
        tmp_path,
        {
            "mech.py": """\
            def _phase(self, name, t):
                return self.spans.start(name, "mig:ws0", t=t)

            def run(self):
                self._phase("not.registered", 0.0)
            """
        },
        ["obs-span-catalogue"],
    )
    assert rule_ids(bad) == ["obs-span-catalogue"]
    assert "forwarded" in bad[0].message and "not.registered" in bad[0].message

    good = findings_of(
        tmp_path,
        {
            "mech.py": """\
            from repro.obs.spans import MIG_FREEZE

            def _phase(self, name, t):
                return self.spans.start(name, "mig:ws0", t=t)

            def run(self):
                self._phase(MIG_FREEZE, 0.0)
            """
        },
        ["obs-span-catalogue"],
    )
    assert good == []


def test_span_catalogue_exempts_obs_layer(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "obs/impl.py": """\
            def go(self):
                self.spans.start("anything.goes", "x:ws0")
            """
        },
        ["obs-span-catalogue"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# coroutine-protocol
# ----------------------------------------------------------------------
def test_coroutine_discarded_call_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "sim/worker.py": """\
            class Worker:
                def step(self):
                    yield 1

                def run(self):
                    self.step()
                    yield 2
            """
        },
        ["coroutine-protocol"],
    )
    assert rule_ids(findings) == ["coroutine-protocol"]
    assert findings[0].rel == "sim/worker.py"
    assert findings[0].line == 6
    assert "yield from" in findings[0].message


def test_coroutine_yield_instead_of_yield_from_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "sim/worker.py": """\
            def step():
                yield 1


            def run():
                yield step()
            """
        },
        ["coroutine-protocol"],
    )
    assert rule_ids(findings) == ["coroutine-protocol"]
    assert "yield from" in findings[0].message


def test_coroutine_truthiness_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "sim/worker.py": """\
            def recv():
                yield 1


            def run():
                if recv():
                    return True
                yield 2
            """
        },
        ["coroutine-protocol"],
    )
    assert rule_ids(findings) == ["coroutine-protocol"]
    assert "always truthy" in findings[0].message


def test_coroutine_negative_driven_calls(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "sim/worker.py": """\
            def step():
                yield 1


            def run(sim, spawn):
                gen = step()
                yield from step()
                spawn(sim, step)
                return gen
            """
        },
        ["coroutine-protocol"],
    )
    assert findings == []


def test_coroutine_mixed_candidates_not_guessed(tmp_path):
    # `obj.close()` where one tree class has a coroutine close and
    # another a plain close is ambiguous: never flagged.
    findings = findings_of(
        tmp_path,
        {
            "sim/a.py": """\
            class Stream:
                def close(self):
                    yield 1


            class Lease:
                def close(self):
                    return None


            def run(obj):
                obj.close()
            """
        },
        ["coroutine-protocol"],
    )
    assert findings == []


def test_coroutine_pragma(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "sim/worker.py": """\
            def step():
                yield 1


            def run():
                # lint: disable=coroutine-protocol(builds a detached generator on purpose)
                step()
                yield 2
            """
        },
    )
    result = run_lint(root, rule_ids=["coroutine-protocol"])
    assert result.findings == []
    assert result.suppressed == 1


# ----------------------------------------------------------------------
# determinism-taint
# ----------------------------------------------------------------------
def test_taint_helper_return_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "obs/clock.py": """\
            import time


            def stamp():
                return time.time()
            """,
            "sim/engine.py": """\
            from ..obs.clock import stamp


            def tick(state):
                state.t = stamp()
            """,
        },
        ["determinism-taint"],
    )
    assert rule_ids(findings) == ["determinism-taint"]
    assert findings[0].rel == "sim/engine.py"
    assert "obs/clock.py:5" in findings[0].message


def test_taint_flows_through_chain_and_locals(tmp_path):
    # taint survives an intermediate helper and a local rebind
    findings = findings_of(
        tmp_path,
        {
            "kernel/helper.py": """\
            import time


            def now():
                t = time.time()
                return t


            def laundered():
                value = now()
                return value + 1.0
            """,
            "sim/engine.py": """\
            from ..kernel.helper import laundered


            def tick(state):
                state.t = laundered()
            """,
        },
        ["determinism-taint"],
    )
    rels = sorted({finding.rel for finding in findings})
    assert "sim/engine.py" in rels
    assert all(f.rule == "determinism-taint" for f in findings)


def test_taint_pragma_on_source_does_not_bless_consumers(tmp_path):
    # the wallclock pragma justifies the source's own use; the taint
    # rule still flags sim-side consumption of the returned value.
    findings = findings_of(
        tmp_path,
        {
            "kernel/helper.py": """\
            import time


            def host_seconds():
                return time.time()  # lint: disable=determinism-wallclock(host-side profiling)
            """,
            "sim/engine.py": """\
            from ..kernel.helper import host_seconds


            def tick(state):
                state.t = host_seconds()
            """,
        },
        ["determinism-taint"],
    )
    assert rule_ids(findings) == ["determinism-taint"]


def test_taint_negative_exempt_consumer_and_clean_helper(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "kernel/helper.py": """\
            import time


            def host_seconds():
                return time.time()


            def pure(x):
                return x + 1
            """,
            "obs/profile.py": """\
            from ..kernel.helper import host_seconds


            def sample(sink):
                sink.append(host_seconds())
            """,
            "sim/engine.py": """\
            from ..kernel.helper import pure


            def tick(state):
                state.t = pure(state.t)
            """,
        },
        ["determinism-taint"],
    )
    assert findings == []


def test_taint_pragma_at_call_site(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "kernel/helper.py": """\
            import time


            def host_seconds():
                return time.time()
            """,
            "sim/engine.py": """\
            from ..kernel.helper import host_seconds


            def tick(state):
                # lint: disable=determinism-taint(debug-only path, stripped in runs)
                state.t = host_seconds()
            """,
        },
    )
    result = run_lint(root, rule_ids=["determinism-taint"])
    assert result.findings == []
    assert result.suppressed == 1


# ----------------------------------------------------------------------
# snapshot-safety
# ----------------------------------------------------------------------
def test_snapshot_lambda_factory_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "sim/boot.py": """\
            def install(sim, spawn):
                spawn(sim, lambda: None)
            """
        },
        ["snapshot-safety"],
    )
    assert rule_ids(findings) == ["snapshot-safety"]
    assert "lambda" in findings[0].message


def test_snapshot_nested_closure_factory_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "sim/boot.py": """\
            def install(sim, spawn):
                def worker():
                    yield 1

                spawn(sim, worker)
            """
        },
        ["snapshot-safety"],
    )
    assert rule_ids(findings) == ["snapshot-safety"]
    assert "nested" in findings[0].message


def test_snapshot_reachable_mutable_global_positive(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "kernel/registry.py": """\
            # lint: disable=state-module-mutable(deliberate registry)
            _SEEN = []
            SEEN = {"a": 1}
            seen_cache = []


            def record(x):
                seen_cache.append(x)
            """,
            "sim/boot.py": """\
            from ..kernel.registry import record


            def worker():
                record(1)
                yield 1


            def install(sim, spawn):
                spawn(sim, worker)
            """,
        },
        ["snapshot-safety"],
    )
    assert rule_ids(findings) == ["snapshot-safety"]
    assert findings[0].rel == "kernel/registry.py"
    assert "seen_cache" in findings[0].message
    assert "worker" in findings[0].message or "record" in findings[0].message


def test_snapshot_negative_clean_factory_and_immediate_gen(tmp_path):
    findings = findings_of(
        tmp_path,
        {
            "sim/boot.py": """\
            def worker():
                yield 1


            def other(sim):
                yield 2


            def install(sim, spawn):
                spawn(sim, worker)
                spawn(sim, other(sim))
            """
        },
        ["snapshot-safety"],
    )
    assert findings == []


def test_snapshot_partial_factory_payload_checked(tmp_path):
    # partial(fn, ...) factories root the reachability at fn
    findings = findings_of(
        tmp_path,
        {
            "kernel/registry.py": """\
            ids = []


            def bump(x):
                ids.append(x)
            """,
            "sim/boot.py": """\
            from functools import partial

            from ..kernel.registry import bump


            def program(arg):
                bump(arg)
                yield 1


            def install(sim, spawn):
                spawn(sim, partial(program, 7))
            """,
        },
        ["snapshot-safety"],
    )
    assert rule_ids(findings) == ["snapshot-safety"]
    assert "ids" in findings[0].message


def test_snapshot_pragma(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "sim/boot.py": """\
            def install(sim, spawn):
                # lint: disable=snapshot-safety(test-only scaffold, never snapshotted)
                spawn(sim, lambda: None)
            """
        },
    )
    result = run_lint(root, rule_ids=["snapshot-safety"])
    assert result.findings == []
    assert result.suppressed == 1


# ----------------------------------------------------------------------
# lint --cache (content-hash result cache)
# ----------------------------------------------------------------------
def test_cache_hit_and_invalidation(tmp_path):
    root = make_tree(
        tmp_path,
        {"mod.py": "import time\n\ndef f():\n    return time.time()\n"},
    )
    cache_file = tmp_path / "cache.json"
    first = run_lint(root, cache_path=cache_file)
    assert [f.rule for f in first.findings] == ["determinism-wallclock"]
    assert cache_file.is_file()

    # warm hit: identical findings served from the cache
    cached = json.loads(cache_file.read_text())
    cached["findings"][0]["message"] = "served from cache"
    cache_file.write_text(json.dumps(cached))
    second = run_lint(root, cache_path=cache_file)
    assert second.findings[0].message == "served from cache"

    # any edit changes the key and invalidates the entry
    (root / "mod.py").write_text("def f():\n    return 1\n")
    third = run_lint(root, cache_path=cache_file)
    assert third.findings == []


def test_cache_respects_rule_selection_and_baseline(tmp_path):
    root = make_tree(
        tmp_path,
        {"mod.py": "import time\n\ndef f():\n    return time.time()\n"},
    )
    cache_file = tmp_path / "cache.json"
    full = run_lint(root, cache_path=cache_file)
    assert len(full.findings) == 1

    # different rule selection -> different key -> no stale reuse
    other = run_lint(
        root, rule_ids=["coroutine-protocol"], cache_path=cache_file
    )
    assert other.findings == []

    # baseline applies on top of a cache hit
    warm = run_lint(root, cache_path=cache_file)
    baseline = Baseline.from_findings(warm.findings)
    grandfathered = run_lint(root, baseline=baseline, cache_path=cache_file)
    assert grandfathered.findings == []
    assert grandfathered.baselined == 1


def test_cli_lint_cache_flag(tmp_path, capsys):
    root = make_tree(
        tmp_path,
        {"mod.py": "def f():\n    return 1\n"},
    )
    cache_file = tmp_path / "cache.json"
    code = cli_main(
        ["lint", "--path", str(root), "--cache", str(cache_file)]
    )
    assert code == 0
    assert cache_file.is_file()
    capsys.readouterr()
    code = cli_main(
        ["lint", "--path", str(root), "--cache", str(cache_file)]
    )
    assert code == 0
    assert "lint: clean" in capsys.readouterr().out


# ----------------------------------------------------------------------
# lint --graph (call-graph dump / dead-code report)
# ----------------------------------------------------------------------
def test_cli_lint_graph_report(tmp_path, capsys):
    root = make_tree(
        tmp_path,
        {
            "mod.py": """\
            def used():
                return 1


            def unused():
                return 2


            def main():
                return used()
            """
        },
    )
    code = cli_main(["lint", "--path", str(root), "--graph"])
    out = capsys.readouterr().out
    assert code == 0
    assert "call graph:" in out
    assert "mod.py:5 unused" in out
    assert "mod.py:1 used" not in out


def test_cli_lint_graph_json_and_dot(tmp_path, capsys):
    root = make_tree(
        tmp_path,
        {
            "mod.py": """\
            def callee():
                return 1


            def caller():
                return callee()
            """
        },
    )
    code = cli_main(["lint", "--path", str(root), "--graph", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["stats"]["functions"] == 2
    assert {
        "caller": "mod.py::caller",
        "callee": "mod.py::callee",
        "kind": "call",
        "sharp": True,
    } in payload["edges"]
    assert "mod.py::callee" not in payload["unreferenced"]

    code = cli_main(["lint", "--path", str(root), "--graph", "--dot"])
    dot = capsys.readouterr().out
    assert code == 0
    assert dot.startswith("digraph callgraph {")
    assert '"mod.py::caller" -> "mod.py::callee"' in dot
