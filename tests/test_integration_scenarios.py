"""Deeper end-to-end scenarios across the whole stack."""

import pytest

from repro import SpriteCluster
from repro.kernel import CALL_TABLE, signals as sig
from repro.loadsharing import LoadSharingService, ReExporter
from repro.sim import Sleep, spawn
from repro.workloads import Pmake, SourceTree


def test_pmake_survives_mid_build_eviction():
    """A host is reclaimed during a parallel build: the job comes home,
    finishes there, and the build completes correctly anyway."""
    cluster = SpriteCluster(workstations=5, start_daemons=True)
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.standard_images()
    tree = SourceTree(files=8, compile_cpu=6.0, link_cpu=2.0)
    tree.populate(cluster)
    cluster.run(until=45.0)

    coordinator_host = cluster.hosts[0]
    pmake = Pmake(tree, client=service.mig_client(coordinator_host), max_jobs=4)

    def coordinator(proc):
        result = yield from pmake.run(proc)
        return result

    pcb, _ = coordinator_host.spawn_process(coordinator, name="pmake")

    def user_returns():
        yield Sleep(3.0)   # just after the build starts (t≈48)
        # Reclaim the first non-coordinator host seen hosting a guest.
        while True:
            for host in cluster.hosts[1:]:
                if host.kernel.foreign_pcbs():
                    host.user_input()
                    return
            yield Sleep(0.5)

    spawn(cluster.sim, user_returns(), name="user", daemon=True)
    result = cluster.run_until_complete(pcb.task)
    assert result.targets_built == 9
    evictions = [
        r for r in cluster.migration_records()
        if r.reason == "eviction" and not r.refused
    ]
    assert len(evictions) >= 1


def test_killpg_reaches_migrated_member():
    cluster = SpriteCluster(workstations=3, start_daemons=False)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def member(proc):
        yield from proc.compute(60.0)

    def leader(proc):
        proc.catch_signal(sig.SIGTERM)   # the group signal hits us too
        yield from proc.setpgrp()
        pids = []
        for i in range(2):
            pid = yield from proc.fork(member, name=f"m{i}")
            pids.append(pid)
        yield from proc.compute(2.0)
        # One member has been migrated away by now.
        count = yield from proc.killpg(proc.pcb.pgrp, sig.SIGTERM)
        statuses = yield from proc.wait_all()
        return (count, sorted(s.code for s in statuses))

    pcb, _ = a.spawn_process(leader, name="leader")

    def driver():
        yield Sleep(1.0)
        victims = [
            p for p in a.kernel.resident_pcbs() if p.name.startswith("m")
        ]
        yield from cluster.managers[a.address].migrate(victims[0], b.address)

    spawn(cluster.sim, driver(), name="driver")
    count, codes = cluster.run_until_complete(pcb.task)
    # Leader + two members in the group; members died of SIGTERM.
    assert count == 3
    assert codes == [128 + sig.SIGTERM, 128 + sig.SIGTERM]


def test_migration_while_sleeping_process():
    """Sleep is an interruptible state: migration happens promptly and
    the remaining sleep completes on the target."""
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def sleeper(proc):
        yield from proc.sleep(10.0)
        return (proc.now, proc.pcb.current)

    pcb, _ = a.spawn_process(sleeper, name="sleeper")
    records = []

    def driver():
        yield Sleep(2.0)
        record = yield from cluster.managers[a.address].migrate(pcb, b.address)
        records.append(record)

    spawn(cluster.sim, driver(), name="driver")
    woke_at, where = cluster.run_until_complete(pcb.task)
    assert where == b.address
    # The sleep's total duration is preserved across the move.
    assert woke_at == pytest.approx(10.0, abs=0.5)
    assert records[0].freeze_time < 1.0


def test_signal_during_syscall_delivered_at_boundary():
    cluster = SpriteCluster(workstations=1, start_daemons=False)
    host = cluster.hosts[0]
    cluster.add_file("/big", size=2_000_000)

    def reader(proc):
        proc.catch_signal(sig.SIGUSR1)
        fd = yield from proc.open("/big", 0x1)
        yield from proc.read(fd, 2_000_000)   # long syscall
        seen = proc.signals_seen()
        yield from proc.close(fd)
        return seen

    pcb, _ = host.spawn_process(reader, name="reader")

    def sender():
        yield Sleep(0.5)   # mid-read
        host.kernel.post_signal_local(pcb, sig.SIGUSR1)

    spawn(cluster.sim, sender(), name="sender")
    seen = cluster.run_until_complete(pcb.task)
    assert seen == [sig.SIGUSR1]


def test_three_generation_family_with_migration():
    cluster = SpriteCluster(workstations=3, start_daemons=False)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def grandchild(proc):
        yield from proc.compute(0.5)
        yield from proc.exit(3)

    def child(proc):
        yield from proc.compute(2.0)      # may migrate during this
        yield from proc.fork(grandchild, name="gc")
        status = yield from proc.wait()
        yield from proc.exit(status.code + 10)

    def parent(proc):
        yield from proc.fork(child, name="child")
        status = yield from proc.wait()
        return status.code

    pcb, _ = a.spawn_process(parent, name="parent")

    def driver():
        yield Sleep(1.0)
        kids = [p for p in a.kernel.resident_pcbs() if p.name == "child"]
        yield from cluster.managers[a.address].migrate(kids[0], b.address)

    spawn(cluster.sim, driver(), name="driver")
    code = cluster.run_until_complete(pcb.task)
    assert code == 13   # 3 + 10, reported through two waits across hosts


def test_call_table_covers_every_usercontext_syscall():
    """Meta-test: the Appendix-A table names every call the user API
    can dispatch with location semantics."""
    for name in (
        "gettimeofday", "gethostname", "getrusage", "getpgrp", "setpgrp",
        "open", "close", "read", "write", "lseek", "stat", "unlink",
        "chdir", "fork", "exec", "exit", "wait", "kill", "sleep",
        "migrate", "getpid", "getppid",
    ):
        assert name in CALL_TABLE, f"{name} missing from Appendix-A table"


def test_forward_all_table_marks_everything_home():
    from repro.kernel import forward_all_table

    table = forward_all_table()
    assert set(table) == set(CALL_TABLE)
    assert all(klass == "home" for klass in table.values())


def test_full_stack_day_in_the_life():
    """One compact scenario touching every subsystem: load sharing,
    remote exec, file traffic, eviction, re-export, and accounting."""
    cluster = SpriteCluster(workstations=5, start_daemons=True, seed=2)
    service = LoadSharingService(cluster, architecture="centralized")
    reexporter = ReExporter(cluster, service)
    cluster.standard_images()
    cluster.run(until=45.0)

    submitter = cluster.hosts[0]
    client = service.mig_client(submitter)

    def unit(proc, cpu):
        yield from proc.use_memory(512 * 1024)
        yield from proc.compute(cpu, dirty_bytes_per_second=2048)
        return 0

    def coordinator(proc):
        jobs = [(unit, (30.0,), f"unit{i}") for i in range(6)]
        finished = yield from client.run_batch(proc, jobs, image_path="/bin/sim")
        return finished

    pcb, _ = submitter.spawn_process(coordinator, name="batch")

    def owners():
        yield Sleep(15.0)
        for host in cluster.hosts[1:3]:
            host.user_input()

    spawn(cluster.sim, owners(), name="owners", daemon=True)
    finished = cluster.run_until_complete(pcb.task)
    assert len(finished) == 6
    assert all(job.status is not None for job in finished)
    records = [r for r in cluster.migration_records() if not r.refused]
    reasons = {r.reason for r in records}
    assert "exec" in reasons
    # Bookkeeping sanity: every host's process table is clean of guests.
    for host in cluster.hosts:
        assert host.kernel.foreign_pcbs() == []


def test_appendix_a_consistent_with_executable_subset():
    """The executable CALL_TABLE must agree with the full Appendix A
    reference for every call both define."""
    from repro.kernel import APPENDIX_A, CALL_TABLE

    for name, klass in CALL_TABLE.items():
        assert name in APPENDIX_A, f"{name} absent from Appendix A"
        assert APPENDIX_A[name] == klass, (
            f"{name}: executable table says {klass}, "
            f"Appendix A says {APPENDIX_A[name]}"
        )


def test_appendix_a_shape():
    """Most calls are location-independent — the thesis's key point:
    the shared FS makes forwarding the exception, not the rule."""
    from repro.kernel import APPENDIX_A, classes_of

    histogram = classes_of()
    assert len(APPENDIX_A) >= 90
    assert histogram["local"] > histogram["home"] * 2
    assert histogram.get("unsupported", 0) < len(APPENDIX_A) * 0.12
