"""Fixed-seed golden test: the event-loop fast paths must not reorder.

Runs a small cluster scenario exercising every hot path the engine
overhaul touches — pmake fan-out (migration), a usage window with
batches and evictions, RPC, file traffic, load-average ticks — with
tracing on, and fingerprints the complete traced event order plus the
final report.  The fingerprint is compared against a committed golden
value generated on the pre-fast-path engine, so any change to the
same-instant FIFO semantics (ready queue, heap compaction, bulk
scheduling) shows up as a hash mismatch rather than a subtle drift.

Regenerate (only when an ordering change is *intended* and understood):

    REGEN_ENGINE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_engine_determinism.py -q
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

from repro import SpriteCluster
from repro.loadsharing import LoadSharingService
from repro.workloads import ActivityModel, Pmake, SourceTree, UsageSimulation

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_engine_determinism.json"


def _run_scenario():
    cluster = SpriteCluster(workstations=4, seed=11, trace=True,
                            start_daemons=True)
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.standard_images()

    # Phase 1: a pmake slice — parallel compilation fans jobs out through
    # exec-time migration.
    tree = SourceTree(files=6, compile_cpu=3.0, link_cpu=1.5)
    tree.populate(cluster)
    cluster.run(until=30.0)
    client = service.mig_client(cluster.hosts[0])
    pmake = Pmake(tree, client=client, max_jobs=4)

    def coordinator(proc):
        yield from pmake.run(proc)
        return 0

    pcb, _ = cluster.hosts[0].spawn_process(coordinator, name="pmake")
    cluster.run_until_complete(pcb.task)

    # Phase 2: a compressed usage window — interactive jobs, batches via
    # the load-sharing service, user returns triggering evictions.
    usage = UsageSimulation(
        cluster,
        service,
        duration=cluster.sim.now + 2500.0,
        activity=ActivityModel(seed=7),
        think_time=25.0,
        batch_probability=0.3,
        batch_width=4,
        batch_unit_cpu=120.0,
        seed=7,
    )
    report = usage.run()

    # Phase 3: a deterministic eviction — export a long job to an idle
    # host, then have that host's user return.
    src, dst = cluster.hosts[0], cluster.hosts[1]
    dst.user_leaves()

    def long_job(proc):
        yield from proc.compute(60.0)
        return 0

    pcb, _ = src.spawn_process(long_job, name="guest")
    manager = cluster.manager_of(src)

    def driver():
        from repro.sim import Sleep

        yield Sleep(1.0)
        yield from manager.migrate(pcb, dst.address, reason="manual")
        yield Sleep(5.0)
        dst.user_input()        # the eviction daemon reclaims dst

    from repro.sim import spawn

    spawn(cluster.sim, driver(), name="eviction-driver")
    cluster.run_until_complete(pcb.task)
    return cluster, report


def _fingerprint(cluster, report) -> dict:
    trace_text = "\n".join(str(record) for record in cluster.tracer.records)
    report_text = json.dumps(
        {key: str(value) for key, value in sorted(report.rows().items())}
    )
    records = cluster.migration_records()
    summary = {
        "trace_sha256": hashlib.sha256(trace_text.encode()).hexdigest(),
        "report_sha256": hashlib.sha256(report_text.encode()).hexdigest(),
        "trace_records": len(cluster.tracer.records),
        "migrations": len([r for r in records if not r.refused]),
        "evictions": sum(len(e.events) for e in cluster.evictors),
        "final_time": round(cluster.sim.now, 6),
    }
    return summary


def test_fixed_seed_run_matches_golden():
    cluster, report = _run_scenario()
    summary = _fingerprint(cluster, report)
    # The scenario must actually exercise the paths it claims to guard.
    assert summary["migrations"] > 0
    assert summary["evictions"] > 0
    assert summary["trace_records"] > 100
    if os.environ.get("REGEN_ENGINE_GOLDEN") == "1" or not GOLDEN_PATH.is_file():
        GOLDEN_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert summary == golden, (
        "fixed-seed run diverged from the golden fingerprint — the engine "
        "reordered same-instant events (or the scenario changed); diff: "
        f"{ {k: (golden.get(k), summary.get(k)) for k in set(golden) | set(summary) if golden.get(k) != summary.get(k)} }"
    )
