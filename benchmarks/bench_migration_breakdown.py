"""E1 — Migration-cost breakdown (thesis ch. 7; SPE'91 Table).

The paper decomposes migration time into per-module costs: a base cost
for a trivial process, a per-open-file cost for stream hand-off, a
per-megabyte cost to flush dirty file blocks, and a per-megabyte cost
to flush dirty virtual memory.  Paper reference points (Sun-3 class):
trivial migration ≈ 76 ms, ≈ 9.4 ms per open file, and dirty-data
flushes dominated by the ~0.5 s/MB effective network/server path.
"""

from __future__ import annotations

from repro import MB, SpriteCluster
from repro.fs import OpenMode
from repro.metrics import Table
from repro.sim import Sleep, spawn

from common import run_simulated


def migrate_once(
    open_files: int = 0,
    dirty_file_bytes: int = 0,
    vm_bytes: int = 0,
    dirty_vm_bytes: int = 0,
):
    """One migration with the given state; returns the record."""
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    a, b = cluster.hosts[0], cluster.hosts[1]
    for i in range(open_files):
        cluster.add_file(f"/in{i}", size=4096)

    def job(proc):
        if vm_bytes:
            yield from proc.use_memory(vm_bytes)
        if dirty_vm_bytes:
            yield from proc.dirty_memory(dirty_vm_bytes)
        fds = []
        for i in range(open_files):
            fd = yield from proc.open(f"/in{i}", OpenMode.READ)
            fds.append(fd)
        if dirty_file_bytes:
            fd = yield from proc.open("/out", OpenMode.WRITE | OpenMode.CREATE)
            yield from proc.write(fd, dirty_file_bytes)
            fds.append(fd)
        yield from proc.compute(30.0)
        for fd in fds:
            yield from proc.close(fd)
        return 0

    pcb, _ = a.spawn_process(job, name="subject")
    records = []

    def driver():
        yield Sleep(1.0)
        record = yield from cluster.managers[a.address].migrate(pcb, b.address)
        records.append(record)

    spawn(cluster.sim, driver(), name="driver")
    cluster.run_until_complete(pcb.task)
    return records[0]


def build_table() -> Table:
    table = Table(
        title="E1: migration cost breakdown (model ms; paper: 76ms trivial, "
              "9.4ms/file, ~0.5s/MB flush)",
        columns=["component", "measured (ms)", "marginal cost"],
    )
    trivial = migrate_once()
    table.add_row("trivial process (total)", trivial.total_time * 1e3, "base")

    with_files = {n: migrate_once(open_files=n) for n in (2, 8)}
    per_file = (
        (with_files[8].total_time - with_files[2].total_time) / 6.0 * 1e3
    )
    table.add_row(
        "8 open files (total)", with_files[8].total_time * 1e3,
        f"{per_file:.2f} ms/file",
    )

    dirty_file = migrate_once(dirty_file_bytes=1 * MB)
    table.add_row(
        "1 MB dirty file data (total)", dirty_file.total_time * 1e3,
        f"{(dirty_file.total_time - trivial.total_time) * 1e3:.0f} ms/MB",
    )

    dirty_vm = migrate_once(vm_bytes=2 * MB, dirty_vm_bytes=1 * MB)
    table.add_row(
        "1 MB dirty VM (freeze)", dirty_vm.freeze_time * 1e3,
        f"{(dirty_vm.freeze_time - trivial.freeze_time) * 1e3:.0f} ms/MB",
    )
    return table


def test_e1_migration_breakdown(benchmark, archive):
    table = run_simulated(benchmark, build_table)
    archive("E1_migration_breakdown", table.render())
    trivial_ms = table.rows[0][1]
    # Shape checks: trivial migration is tens of ms; per-file cost is
    # single-digit ms; dirty megabytes dominate everything else.
    assert 10 < trivial_ms < 300
    per_file_ms = float(table.rows[1][2].split()[0])
    assert 1 < per_file_ms < 40
    dirty_total = table.rows[2][1]
    assert dirty_total > 5 * trivial_ms
