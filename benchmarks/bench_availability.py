"""E9 — Host availability over the day (thesis ch. 8 figure).

The thesis's month of measurement: 65–70 % of hosts idle during the
day, rising to ~80 % at night and on weekends.  The activity model
generates a month of per-host console sessions; idleness uses the same
criterion as the kernel (no input for the threshold, low load).
"""

from __future__ import annotations

import numpy as np

from repro.metrics import Series, Table
from repro.obs import MetricsRegistry
from repro.snapshot import forked_map_metrics
from repro.workloads import ActivityModel, idle_fraction_by_hour

from common import run_simulated, sweep_workers

HOSTS = 40
DAYS = 28


def build_artifacts():
    model = ActivityModel(seed=11)
    by_hour = idle_fraction_by_hour(model, hosts=HOSTS, days=DAYS)
    figure = Series(
        title="E9: fraction of hosts idle vs hour of day "
              "(paper: 65-70% by day, ~80% nights/weekends)",
        x_label="hour of day",
        y_label="idle fraction",
    )
    for hour, idle in enumerate(by_hour):
        figure.add_point("all days", hour, float(idle))

    # Weekday vs weekend day-time comparison on raw intervals.  One
    # forked sweep child per host (the model is seeded per host, so
    # the index-ordered merge reproduces the sequential loop exactly).
    duration = DAYS * 86400.0

    def host_busy(index: int):
        intervals = model.generate_intervals(index, duration)
        registry = MetricsRegistry()
        weekday, weekend = [], []
        for day in range(DAYS):
            window = (day * 86400.0 + 9 * 3600.0, day * 86400.0 + 18 * 3600.0)
            frac = model.busy_fraction(intervals, window)
            if day % 7 < 5:
                weekday.append(frac)
                registry.timer("busy.weekday", index).observe(frac)
            else:
                weekend.append(frac)
                registry.timer("busy.weekend", index).observe(frac)
        return (weekday, weekend), registry

    weekday_busy, weekend_busy = [], []
    pairs, metrics = forked_map_metrics(
        host_busy, HOSTS, workers=sweep_workers()
    )
    for weekday, weekend in pairs:
        weekday_busy.extend(weekday)
        weekend_busy.extend(weekend)
    table = Table(
        title="E9: availability summary",
        columns=["window", "mean idle fraction"],
    )
    day_idle = float(by_hour[9:18].mean())
    night_idle = float(np.concatenate([by_hour[:7], by_hour[22:]]).mean())
    table.add_row("daytime (9-18h)", day_idle)
    table.add_row("night (22-7h)", night_idle)
    table.add_row("weekday working hours", 1.0 - float(np.mean(weekday_busy)))
    table.add_row("weekend working hours", 1.0 - float(np.mean(weekend_busy)))
    weekday_hist = metrics.merged_timer("busy.weekday")
    weekend_hist = metrics.merged_timer("busy.weekend")
    table.notes = (
        f"sweep aggregate over {HOSTS} hosts: "
        f"{weekday_hist.count} weekday / {weekend_hist.count} weekend "
        f"day-samples; p95 weekday busy {weekday_hist.percentile(95):.3f}"
    )
    return figure, table, day_idle, night_idle


def test_e9_availability(benchmark, archive):
    figure, table, day_idle, night_idle = run_simulated(benchmark, build_artifacts)
    archive("E9_availability", figure.render() + "\n\n" + table.render())
    # The paper's bands.
    assert 0.55 < day_idle < 0.80
    assert night_idle > 0.72
    assert night_idle > day_idle
