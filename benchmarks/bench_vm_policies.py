"""E2 — Migration time vs. VM size under the four transfer policies
(thesis §4.2.1 figure).

The paper's qualitative comparison: monolithic copy freezes the process
for the whole transfer; V's pre-copy shrinks the freeze at the price of
extra total bytes; Accent's copy-on-reference migrates almost
instantly but leaves a residual dependency; Sprite's flush-to-server
pays only for *dirty* pages at freeze time and leaves nothing behind.
"""

from __future__ import annotations

from repro import MB, SpriteCluster
from repro.metrics import Series, Table
from repro.migration import POLICIES
from repro.obs import ClusterObservability
from repro.sim import Sleep, spawn
from repro.snapshot import forked_map_metrics

from common import run_simulated, sweep_workers

VM_SIZES_MB = (1, 2, 4, 8)
DIRTY_FRACTION = 0.25
DIRTY_RATE = 64 * 1024   # bytes/sec re-dirtied during pre-copy rounds


def migrate_with_policy(policy_name: str, vm_mb: int):
    cluster = SpriteCluster(
        workstations=2, start_daemons=False, vm_policy=policy_name
    )
    obs = ClusterObservability.install(cluster, spans=False)
    a, b = cluster.hosts[0], cluster.hosts[1]
    vm_bytes = vm_mb * MB

    def job(proc):
        yield from proc.use_memory(vm_bytes)
        yield from proc.dirty_memory(int(vm_bytes * DIRTY_FRACTION))
        proc.pcb.vm.dirty_rate_hint = DIRTY_RATE
        yield from proc.compute(120.0)
        return 0

    pcb, _ = a.spawn_process(job, name="subject")
    records = []

    def driver():
        yield Sleep(1.0)
        record = yield from cluster.managers[a.address].migrate(pcb, b.address)
        records.append(record)

    spawn(cluster.sim, driver(), name="driver")
    cluster.run_until_complete(pcb.task)
    record = records[0]
    # The scalars the figure/table need, plus the cell's full metrics
    # registry — both cross the child's pipe; the parent merges the
    # registries in cell order (forked_map_metrics).
    return {
        "freeze_time": record.freeze_time,
        "bytes_total": record.vm.bytes_total,
        "rounds": record.vm.rounds,
        "residual_dependency": record.vm.residual_dependency,
    }, obs.registry


def build_artifacts():
    figure = Series(
        title="E2: freeze time vs VM size by policy (25% dirty)",
        x_label="VM size (MB)",
        y_label="freeze time (s)",
    )
    table = Table(
        title="E2: VM transfer policies at 8 MB (25% dirty)",
        columns=["policy", "freeze (s)", "total bytes (MB)", "rounds",
                 "residual dependency"],
    )
    cells = [
        (policy_name, vm_mb)
        for policy_name in sorted(POLICIES)
        for vm_mb in VM_SIZES_MB
    ]
    # Each cell migrates on its own fresh cluster in a forked child
    # (repro.snapshot's sweep primitive); index-ordered merge keeps the
    # artifacts byte-identical to the old sequential loop.  Each cell
    # also ships its metrics registry back through the result pipe;
    # the merged aggregate is fingerprint-stable for any worker count.
    results, metrics = forked_map_metrics(
        lambda i: migrate_with_policy(*cells[i]), len(cells),
        workers=sweep_workers(),
    )
    last = {}
    for (policy_name, vm_mb), record in zip(cells, results):
        figure.add_point(policy_name, vm_mb, record["freeze_time"])
        last[policy_name] = record
    for policy_name in sorted(POLICIES):
        record = last[policy_name]
        table.add_row(
            policy_name,
            record["freeze_time"],
            record["bytes_total"] / MB,
            record["rounds"],
            "yes" if record["residual_dependency"] else "no",
        )
    freeze = metrics.merged_timer("mig.freeze").summary()
    table.notes = (
        f"sweep aggregate over {len(cells)} cells: "
        f"{metrics.total('mig.completed')} migrations, "
        f"{metrics.total('mig.vm_bytes') / MB:.1f} MB of VM shipped, "
        f"median freeze {freeze['p50']:.4f}s / p99 {freeze['p99']:.4f}s"
    )
    return figure, table, last


def test_e2_vm_policies(benchmark, archive):
    figure, table, last = run_simulated(benchmark, build_artifacts)
    archive("E2_vm_policies", figure.render() + "\n\n" + table.render())
    # The paper's ordering at large VM: the full monolithic copy freezes
    # far longer than every alternative; COR and pre-copy both collapse
    # the freeze to near the state-packaging floor.
    freeze = {name: rec["freeze_time"] for name, rec in last.items()}
    assert freeze["full-copy"] > 5 * freeze["pre-copy"]
    assert freeze["full-copy"] > 5 * freeze["copy-on-reference"]
    assert freeze["flush-to-server"] < freeze["full-copy"]
    # Flush pays for the dirty fraction: between the cheap policies and
    # the monolithic copy.
    assert freeze["flush-to-server"] > freeze["copy-on-reference"]
    # Residual dependency is unique to copy-on-reference.
    assert last["copy-on-reference"]["residual_dependency"]
    assert not last["flush-to-server"]["residual_dependency"]
    # Pre-copy moves more total bytes than the image.
    assert last["pre-copy"]["bytes_total"] >= 8 * MB
