"""E12 — Distributed-probabilistic vs shared-file selection (thesis
§6.3, the Stolcke/von Eicken comparison [SvE89]).

Both designs make decisions from potentially stale data; the comparison
measures how often staleness bites (conflicts / selections of hosts
that turn out busy) and what the decisions cost, under concurrent
requesters.
"""

from __future__ import annotations

from repro import SpriteCluster
from repro.loadsharing import LoadSharingService
from repro.metrics import Table
from repro.sim import Sleep, run_until_complete, spawn

from common import run_simulated

HOSTS = 10
REQUESTERS = 4
ROUNDS = 8


def exercise(architecture: str):
    cluster = SpriteCluster(workstations=HOSTS, start_daemons=True, seed=5)
    service = LoadSharingService(cluster, architecture=architecture)
    cluster.run(until=60.0)
    messages_before = cluster.lan.messages_sent
    window_start = cluster.sim.now

    granted_all = []
    double_assignments = [0]

    def requester(index):
        selector = service.selector_for(cluster.hosts[index])
        for _ in range(ROUNDS):
            granted = yield from selector.request(2)
            granted_all.append((cluster.sim.now, index, tuple(granted)))
            yield Sleep(1.5)
            yield from selector.release(granted)
            yield Sleep(1.0)

    tasks = [
        spawn(cluster.sim, requester(i), name=f"req{i}")
        for i in range(REQUESTERS)
    ]

    def joiner():
        for task in tasks:
            yield task.join()

    run_until_complete(cluster.sim, joiner(), name="joiner")

    # Concurrent double assignments: the same host granted to two
    # requesters within one holding window.
    holds = {}
    for when, requester_index, granted in granted_all:
        for address in granted:
            for (other_when, other_requester) in holds.get(address, []):
                if abs(when - other_when) < 1.5 and other_requester != requester_index:
                    double_assignments[0] += 1
            holds.setdefault(address, []).append((when, requester_index))

    window = cluster.sim.now - window_start
    total_granted = sum(len(g) for _t, _i, g in granted_all)
    latencies = [
        latency
        for selector in service.selectors.values()
        for latency in selector.metrics.latencies
    ]
    return {
        "granted": total_granted,
        "latency_ms": 1e3 * sum(latencies) / len(latencies) if latencies else 0.0,
        "messages_per_s": (cluster.lan.messages_sent - messages_before) / window,
        "double_assignments": double_assignments[0],
    }


def build_artifacts():
    table = Table(
        title="E12: shared-file vs probabilistic-distributed selection "
              "(4 concurrent requesters, cf. [SvE89])",
        columns=["architecture", "granted", "latency (ms)",
                 "msgs/s", "double assignments"],
        notes="double assignment = one host granted to two requesters "
              "in the same holding window (stale-data conflicts); the "
              "centralized row is the thesis's fix",
    )
    stats = {}
    for architecture in ("shared-file", "probabilistic", "centralized"):
        stats[architecture] = exercise(architecture)
        row = stats[architecture]
        table.add_row(
            architecture, row["granted"], row["latency_ms"],
            row["messages_per_s"], row["double_assignments"],
        )
    return table, stats


def test_e12_distributed_selection(benchmark, archive):
    table, stats = run_simulated(benchmark, build_artifacts)
    archive("E12_distributed_selection", table.render())
    # The central server never double-assigns; the distributed designs
    # can (and here do, under concurrent requesters).
    assert stats["centralized"]["double_assignments"] == 0
    distributed_conflicts = (
        stats["shared-file"]["double_assignments"]
        + stats["probabilistic"]["double_assignments"]
    )
    assert distributed_conflicts >= 1
    # Everyone grants a comparable volume of hosts.
    for architecture, row in stats.items():
        assert row["granted"] >= ROUNDS * REQUESTERS
