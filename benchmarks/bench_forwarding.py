"""E3 — Cost of kernel calls for remote processes (thesis ch. 4/7) and
A2 — the forward-everything ablation (§4.3).

Two artifacts:

* The kernel-call cost table: a local call costs a fraction of a
  millisecond; the same call forwarded home by a remote process costs
  a full RPC round trip (the paper's gettimeofday comparison), while
  location-independent calls (getpid, file I/O through the shared FS)
  cost the same everywhere — the payoff of transferring state instead
  of forwarding everything.
* The A2 ablation: the same file-heavy job run as a Sprite-migrated
  process vs. under Remote UNIX-style total forwarding, where every
  call pays an RPC and every data byte double-hops via the home.
"""

from __future__ import annotations

from repro import KB, SpriteCluster
from repro.baselines import ForwardingSurrogate, remote_unix_run
from repro.fs import OpenMode
from repro.metrics import Table
from repro.sim import Sleep, spawn

from common import run_simulated

CALLS = 50
FILE_BYTES = 256 * KB


def measure_call_costs():
    """Mean per-call time for local vs migrated processes."""
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    a, b = cluster.hosts[0], cluster.hosts[1]
    cluster.add_file("/shared/data", size=FILE_BYTES)
    timings = {}

    def exercise(proc, label):
        start = proc.now
        for _ in range(CALLS):
            yield from proc.gettimeofday()
        timings[f"{label}:gettimeofday"] = (proc.now - start) / CALLS
        start = proc.now
        for _ in range(CALLS):
            yield from proc.getpid()
        timings[f"{label}:getpid"] = (proc.now - start) / CALLS
        fd = yield from proc.open("/shared/data", OpenMode.READ)
        yield from proc.read(fd, FILE_BYTES)   # warm the local cache
        start = proc.now
        for _ in range(10):
            yield from proc.lseek(fd, 0)
            yield from proc.read(fd, 16 * KB)
        timings[f"{label}:cached-read-16K"] = (proc.now - start) / 10
        yield from proc.close(fd)

    def local_job(proc):
        yield from exercise(proc, "local")
        return 0

    def remote_job(proc):
        yield from proc.compute(1.0)   # migrates during this
        yield from exercise(proc, "remote")
        return 0

    cluster.run_process(a, local_job, name="local")
    pcb, _ = a.spawn_process(remote_job, name="remote")

    def driver():
        yield Sleep(0.5)
        yield from cluster.managers[a.address].migrate(pcb, b.address)

    spawn(cluster.sim, driver(), name="driver")
    cluster.run_until_complete(pcb.task)
    return timings


def measure_forward_all():
    """A2: elapsed time of one file-heavy job, Sprite vs forward-all."""
    results = {}

    def io_job_sprite(proc):
        fd = yield from proc.open("/input", OpenMode.READ)
        for _ in range(8):
            yield from proc.lseek(fd, 0)
            yield from proc.read(fd, FILE_BYTES)
        yield from proc.close(fd)
        yield from proc.compute(1.0)
        return 0

    # Sprite: the process migrates, then does I/O directly.
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    cluster.add_file("/input", size=FILE_BYTES)
    a, b = cluster.hosts[0], cluster.hosts[1]
    pcb, _ = a.spawn_process(io_job_sprite, name="sprite-job")

    def driver():
        yield Sleep(0.1)
        yield from cluster.managers[a.address].migrate(pcb, b.address)

    spawn(cluster.sim, driver(), name="driver")
    start = cluster.sim.now
    cluster.run_until_complete(pcb.task)
    results["sprite"] = cluster.sim.now - start
    results["sprite_wire_bytes"] = cluster.lan.bytes_sent

    # Remote UNIX: same job under total forwarding.
    cluster2 = SpriteCluster(workstations=2, start_daemons=False)
    cluster2.add_file("/input", size=FILE_BYTES)
    home, runner = cluster2.hosts[0], cluster2.hosts[1]
    surrogate = ForwardingSurrogate(home)

    def io_job_forwarded(fwd):
        fd = yield from fwd.open("/input", OpenMode.READ)
        for _ in range(8):
            yield from fwd.lseek(fd, 0)
            yield from fwd.read(fd, FILE_BYTES)
        yield from fwd.close(fd)
        yield from fwd.compute(1.0)
        return 0

    def launcher():
        task = yield from remote_unix_run(
            surrogate, runner, io_job_forwarded, image_bytes=1
        )
        yield task.join()

    task = spawn(cluster2.sim, launcher(), name="launcher")
    start = cluster2.sim.now
    cluster2.run_until_complete(task)
    results["forward-all"] = cluster2.sim.now - start
    results["forward_wire_bytes"] = cluster2.lan.bytes_sent
    return results


def build_artifacts():
    timings = measure_call_costs()
    table = Table(
        title="E3: kernel-call cost, local vs migrated process (model ms)",
        columns=["kernel call", "local (ms)", "remote (ms)", "ratio"],
        notes="home-class calls pay an RPC; location-independent calls do not",
    )
    for call in ("gettimeofday", "getpid", "cached-read-16K"):
        local = timings[f"local:{call}"] * 1e3
        remote = timings[f"remote:{call}"] * 1e3
        table.add_row(call, local, remote, remote / local if local else 0)

    ablation = measure_forward_all()
    a2 = Table(
        title="A2: transfer-state (Sprite) vs forward-every-call (Remote UNIX)",
        columns=["design", "elapsed (s)", "wire bytes (KB)"],
        notes="8 x 256 KB reads + 1 s compute on another host",
    )
    a2.add_row("sprite-migration", ablation["sprite"],
               ablation["sprite_wire_bytes"] / KB)
    a2.add_row("forward-all", ablation["forward-all"],
               ablation["forward_wire_bytes"] / KB)
    return table, a2, timings, ablation


def test_e3_forwarding_costs(benchmark, archive):
    table, a2, timings, ablation = run_simulated(benchmark, build_artifacts)
    archive("E3_forwarding", table.render() + "\n\n" + a2.render())
    # Forwarded gettimeofday is many times its local cost.
    assert timings["remote:gettimeofday"] > 3 * timings["local:gettimeofday"]
    # getpid and cached reads stay (nearly) location-independent.
    assert timings["remote:getpid"] < 2 * timings["local:getpid"]
    assert timings["remote:cached-read-16K"] < 2 * timings["local:cached-read-16K"]
    # A2: total forwarding costs more time and roughly double the bytes.
    assert ablation["forward-all"] > ablation["sprite"]
    assert ablation["forward_wire_bytes"] > 1.5 * ablation["sprite_wire_bytes"]
