"""E6 — Simulation-farm effective utilization (thesis ch. 7).

100 independent simulations farmed across idle hosts reached > 800 %
effective processor utilization in the thesis, against ~300 % for the
12-way parallel compile — embarrassingly parallel work with almost no
shared-file traffic scales with the host pool.
"""

from __future__ import annotations

from repro import SpriteCluster
from repro.loadsharing import LoadSharingService
from repro.metrics import Table
from repro.workloads import Pmake, SimFarm, SourceTree

from common import run_simulated

HOSTS = 14
SIM_JOBS = 40
SIM_CPU = 60.0


def run_farm():
    cluster = SpriteCluster(
        workstations=HOSTS,
        start_daemons=True,
        params=None,
    )
    # Coarser quantum: 40 long jobs don't need 10 ms scheduling fidelity.
    for host in cluster.hosts:
        host.cpu.quantum = 0.25
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.standard_images()
    cluster.run(until=45.0)
    host = cluster.hosts[0]
    farm = SimFarm(service.mig_client(host), jobs=SIM_JOBS, cpu_seconds=SIM_CPU)

    def coordinator(proc):
        result = yield from farm.run(proc)
        return result

    pcb, _ = host.spawn_process(coordinator, name="farm")
    return cluster.run_until_complete(pcb.task)


def run_compile_reference():
    """The 12-way compile's utilization, for the paper's contrast."""
    cluster = SpriteCluster(workstations=HOSTS, start_daemons=True)
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.standard_images()
    tree = SourceTree(files=16, compile_cpu=8.0, link_cpu=4.0)
    tree.populate(cluster)
    cluster.run(until=45.0)
    host = cluster.hosts[0]
    pmake = Pmake(tree, client=service.mig_client(host), max_jobs=12)

    def coordinator(proc):
        result = yield from pmake.run(proc)
        return result

    pcb, _ = host.spawn_process(coordinator, name="pmake")
    result = cluster.run_until_complete(pcb.task)
    total_cpu = 16 * 8.0 + 4.0
    return 100.0 * total_cpu / result.elapsed


def build_artifacts():
    farm = run_farm()
    compile_util = run_compile_reference()
    table = Table(
        title="E6: effective processor utilization "
              "(paper: >800% for 100 sims, ~300% for 12-way compile)",
        columns=["workload", "jobs", "elapsed (s)",
                 "effective utilization (%)"],
    )
    table.add_row("simulation farm", farm.jobs, farm.elapsed,
                  farm.effective_utilization)
    table.add_row("12-way pmake", 17, "-", compile_util)
    return table, farm, compile_util


def test_e6_simfarm_utilization(benchmark, archive):
    table, farm, compile_util = run_simulated(benchmark, build_artifacts)
    archive("E6_simfarm", table.render())
    # The farm's utilization dwarfs the compile's, as in the paper.
    assert farm.effective_utilization > 1.8 * compile_util
    # And approaches the host-pool size (x100%).
    assert farm.effective_utilization > 500.0
    assert farm.remote_jobs > SIM_JOBS // 2
