"""E5 — pmake speedup vs. number of hosts (thesis ch. 7 figure).

The flagship result: parallel compilation across idle workstations.
The curve rises with the job limit but flattens well below linear —
Amdahl's sequential link step plus file-server contention (name
lookups) bound it, and the thesis reports ~5x at 12-way parallelism
(≈300 % effective utilization).
"""

from __future__ import annotations

from repro import SpriteCluster
from repro.loadsharing import LoadSharingService
from repro.metrics import Series, Table
from repro.workloads import Pmake, SourceTree

from common import run_simulated

FILES = 16
COMPILE_CPU = 8.0
LINK_CPU = 4.0
JOB_COUNTS = (1, 2, 4, 8, 12)


def build_once(jobs: int):
    cluster = SpriteCluster(workstations=14, start_daemons=True)
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.standard_images()
    tree = SourceTree(files=FILES, compile_cpu=COMPILE_CPU, link_cpu=LINK_CPU)
    tree.populate(cluster)
    cluster.run(until=45.0)
    host = cluster.hosts[0]
    client = service.mig_client(host) if jobs > 1 else None
    pmake = Pmake(tree, client=client, max_jobs=jobs)

    def coordinator(proc):
        result = yield from pmake.run(proc)
        return result

    pcb, _ = host.spawn_process(coordinator, name="pmake")
    lookups_before = cluster.file_server.lookups
    result = cluster.run_until_complete(pcb.task)
    server_util = cluster.server_hosts[0].cpu.utilization()
    return result, cluster.file_server.lookups - lookups_before, server_util


def build_artifacts():
    figure = Series(
        title="E5: pmake speedup vs degree of parallelism "
              "(paper: ~5x at 12-way, server-bound)",
        x_label="max parallel jobs",
        y_label="speedup",
    )
    table = Table(
        title="E5: pmake parallel compilation",
        columns=["jobs", "elapsed (s)", "speedup", "remote jobs",
                 "server lookups", "server cpu util"],
    )
    sequential = None
    speedups = {}
    for jobs in JOB_COUNTS:
        result, lookups, server_util = build_once(jobs)
        if sequential is None:
            sequential = result.elapsed
        speedup = sequential / result.elapsed
        speedups[jobs] = speedup
        figure.add_point("pmake", jobs, speedup)
        table.add_row(jobs, result.elapsed, speedup, result.remote_jobs,
                      lookups, server_util)
    return figure, table, speedups


def test_e5_pmake_speedup(benchmark, archive):
    figure, table, speedups = run_simulated(benchmark, build_artifacts)
    archive("E5_pmake_speedup", figure.render() + "\n\n" + table.render())
    # Monotone-ish rise then saturation; sublinear at high parallelism.
    assert speedups[2] > 1.5
    assert speedups[8] > speedups[2]
    assert speedups[12] < 8.0           # Amdahl + server contention ceiling
    assert speedups[12] >= 0.8 * speedups[8]  # flattening, not collapsing
