"""P8 — Migration vs checkpoint/restart: the fault-tolerance tradeoff.

The thesis motivates migration partly as a way to *avoid* losing work;
checkpoint/restart (Condor's approach) is the classic alternative the
``repro.checkpoint`` subsystem adds.  This benchmark reproduces the
tradeoff study: the chaos gauntlet under seeded-random host churn,
swept over

* **failure rate** — mean time between host crashes (``mtbf``),
* **checkpoint interval** — how often the daemon images each job,
* **fault policy** — ``migrate`` (proactive migration only, today's
  behaviour), ``checkpoint`` (periodic checkpoint/restart only), and
  ``hybrid`` (both),

and in full mode an **image size** axis (per-job address space, which
sizes every checkpoint image).  Each cell reports job availability
(fraction of submitted jobs finishing with exit 0) and goodput
(successful job-seconds per sim second); together they trace the
curves: frequent checkpoints buy availability at image-write cost,
rare ones lose more progress per crash, and proactive migration alone
cannot save a job that was resident at crash time.

Cells fan out over ``SweepRunner`` copy-on-write forks of one warmed
base cluster.  Determinism is load-bearing and checked on every run:
the sweep fingerprint (SHA-256 over every cell's trace fingerprint in
grid order) must be byte-identical at ``--workers 1`` and
``--workers 4``.

The other pinned promise is **zero cost when off**: a ``migrate``-policy
run constructs no checkpoint machinery, and even an instantiated-but-
unused :class:`~repro.checkpoint.CheckpointService` (nothing
registered, so no daemon ever spawns) must leave the gauntlet's event
schedule and trace fingerprint identical, with wall-time overhead under
``--max-idle-overhead`` (default 1.05x).

Run standalone (``python benchmarks/bench_checkpoint.py [--smoke]``) or
via pytest; results are archived as ``P8_checkpoint.json``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

if __package__ is None or __package__ == "":
    _SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

try:
    from common import archive_json, run_simulated
except ImportError:  # imported as benchmarks.bench_checkpoint
    from .common import archive_json, run_simulated  # type: ignore

KB = 1024

#: Sweep axes: every mode covers >= 3 failure rates x 3 checkpoint
#: intervals x all 3 policies; full mode adds the image-size axis and a
#: longer gauntlet.
SIZES = {
    "full": {
        "hosts": 4, "duration": 60.0, "jobs": 6, "job_length": 6.0,
        "mtbfs": [12.0, 25.0, 50.0],
        "intervals": [2.5, 5.0, 10.0],
        "image_sizes": [64 * KB, 512 * KB],
        "workers_check": 4,
    },
    "smoke": {
        "hosts": 4, "duration": 40.0, "jobs": 4, "job_length": 4.0,
        "mtbfs": [10.0, 20.0, 40.0],
        "intervals": [2.5, 5.0, 10.0],
        "image_sizes": [64 * KB],
        "workers_check": 4,
    },
}

#: The gauntlet the idle-overhead pin times (small, fault-rich).
IDLE_PIN = {"seed": 11, "hosts": 4, "duration": 50.0, "jobs": 5}


# ----------------------------------------------------------------------
# The policy sweep
# ----------------------------------------------------------------------
def _build_grid(sizes: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One cell per (mtbf, policy[, interval, image size]) point.

    ``migrate`` takes no checkpoints, so it gets one cell per
    (mtbf, image size) rather than one per interval.
    """
    grid: List[Dict[str, Any]] = []
    for mtbf in sizes["mtbfs"]:
        for memory in sizes["image_sizes"]:
            grid.append({
                "policy": "migrate", "mtbf": mtbf,
                "interval": None, "memory": memory,
            })
            for policy in ("checkpoint", "hybrid"):
                for interval in sizes["intervals"]:
                    grid.append({
                        "policy": policy, "mtbf": mtbf,
                        "interval": interval, "memory": memory,
                    })
    return grid


def _run_sweep(
    sizes: Dict[str, Any], workers: int, base: Any = None
) -> Tuple[List[Dict[str, Any]], str, Any]:
    """Run the grid; returns (cell rows, sweep fingerprint, base)."""
    from repro.faults.chaos import build_chaos_base, run_chaos
    from repro.snapshot import SweepRunner

    if base is None:
        base = build_chaos_base(seed=0, workstations=sizes["hosts"])
    grid = _build_grid(sizes)

    def cell_fn(cluster, cell):
        report = run_chaos(
            duration=sizes["duration"],
            random_churn=True,
            mtbf=cell["mtbf"],
            jobs=sizes["jobs"],
            job_length=sizes["job_length"],
            base=cluster,
            policy=cell["policy"],
            checkpoint_interval=cell["interval"],
            job_memory=cell["memory"],
        )
        return {
            **cell,
            "availability": round(report.availability, 4),
            "goodput": round(report.goodput, 4),
            "jobs_ok": report.jobs_ok,
            "jobs_lost": report.jobs_lost,
            "migrations": report.migrations,
            "checkpoints": report.checkpoints,
            "restores": report.restores,
            "torn_images": report.torn_images,
            "unrecoverable": report.unrecoverable,
            "violations": len(report.violations),
            "fingerprint": report.fingerprint,
        }

    rows = SweepRunner(base, workers=workers).run(grid, cell_fn)
    payload = "\n".join(
        f"{row['policy']}|{row['mtbf']}|{row['interval']}|{row['memory']}"
        f"|{row['fingerprint']}"
        for row in rows
    )
    fingerprint = hashlib.sha256(payload.encode()).hexdigest()
    return rows, fingerprint, base


# ----------------------------------------------------------------------
# The zero-cost-when-off pin
# ----------------------------------------------------------------------
def _run_gauntlet(idle_service: bool) -> Callable[[], Any]:
    """The golden chaos gauntlet, with or without an idle (instantiated,
    never registered) CheckpointService attached before the run."""

    def build_and_run():
        from repro.faults.chaos import run_chaos

        from repro.cluster import SpriteCluster
        from repro.loadsharing import LoadSharingService

        cluster = SpriteCluster(
            workstations=IDLE_PIN["hosts"], seed=IDLE_PIN["seed"], trace=True
        )
        cluster.standard_images()
        service = LoadSharingService(cluster, architecture="centralized")
        cluster.extras = {"service": service}
        if idle_service:
            from repro.checkpoint import CheckpointService

            CheckpointService(cluster)  # nothing registered: no daemons
        report = run_chaos(
            duration=IDLE_PIN["duration"], jobs=IDLE_PIN["jobs"],
            base=cluster,
        )
        return cluster.sim, report

    return build_and_run


def _timed_row(build_and_run: Callable[[], Any], repeats: int) -> Dict[str, Any]:
    walls = []
    events = 0
    fingerprint = ""
    for _ in range(repeats):
        start = time.perf_counter()
        sim, report = build_and_run()
        walls.append(time.perf_counter() - start)
        events = getattr(sim, "events_fired", 0)
        fingerprint = report.fingerprint
    wall = min(walls)
    return {
        "events": events,
        "wall_s": round(wall, 6),
        "events_per_s": round(events / wall) if wall > 0 else 0.0,
        "fingerprint": fingerprint,
    }


def _idle_overhead(repeats: int) -> Dict[str, Any]:
    """Interleaved best-of-N so both configurations see the same noise
    environment (same discipline as the P3 journal ablation)."""
    none_build = _run_gauntlet(False)
    idle_build = _run_gauntlet(True)
    none_build()  # warm-up, untimed
    none_walls: List[float] = []
    idle_walls: List[float] = []
    none_row = idle_row = None
    # 2N interleaved samples: the ratio gate is tight (1.05x) and the
    # true cost is ~1.00x, so the min-of-N needs room to converge.
    for _ in range(max(repeats, 3) * 2):
        start = time.perf_counter()
        sim, report = none_build()
        none_walls.append(time.perf_counter() - start)
        none_row = {"events": sim.events_fired, "fingerprint": report.fingerprint}
        start = time.perf_counter()
        sim, report = idle_build()
        idle_walls.append(time.perf_counter() - start)
        idle_row = {"events": sim.events_fired, "fingerprint": report.fingerprint}
    for row, walls in ((none_row, none_walls), (idle_row, idle_walls)):
        row["wall_s"] = round(min(walls), 6)
        row["events_per_s"] = round(row["events"] / min(walls))
    assert idle_row["events"] == none_row["events"], (
        "idle CheckpointService changed the event schedule: "
        f"{idle_row['events']} != {none_row['events']}"
    )
    assert idle_row["fingerprint"] == none_row["fingerprint"], (
        "idle CheckpointService changed the trace fingerprint"
    )
    return {
        "no_service": none_row,
        "idle_service": idle_row,
        "overhead_ratio": round(idle_row["wall_s"] / none_row["wall_s"], 4),
        "identical_schedule": True,
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_all(smoke: bool = False, repeats: int = 3) -> Dict[str, Any]:
    sizes = SIZES["smoke" if smoke else "full"]

    rows, fingerprint, base = _run_sweep(sizes, workers=1)
    rows_parallel, fingerprint_parallel, _ = _run_sweep(
        sizes, workers=sizes["workers_check"], base=base
    )
    assert fingerprint_parallel == fingerprint, (
        f"sweep nondeterministic across worker counts: "
        f"{fingerprint[:16]} != {fingerprint_parallel[:16]}"
    )
    del rows_parallel

    results: Dict[str, Any] = {
        "sweep": {
            "cells": rows,
            "fingerprint": fingerprint,
            "workers_verified": [1, sizes["workers_check"]],
        },
        "idle_overhead": _idle_overhead(repeats),
        "violations": sum(row["violations"] for row in rows),
    }
    return results


def render(results: Dict[str, Any], mode: str) -> str:
    lines = [
        f"P8: migration vs checkpoint/restart tradeoff ({mode} sizes)",
        f"{'policy':<12} {'mtbf':>6} {'ckpt-int':>8} {'image':>8} "
        f"{'avail':>6} {'goodput':>8} {'ckpts':>6} {'restores':>8} "
        f"{'torn':>5} {'migr':>5}",
    ]
    for row in results["sweep"]["cells"]:
        interval = "-" if row["interval"] is None else f"{row['interval']:g}"
        lines.append(
            f"{row['policy']:<12} {row['mtbf']:>6g} {interval:>8} "
            f"{row['memory'] // KB:>6}KB {row['availability']:>6.2f} "
            f"{row['goodput']:>8.3f} {row['checkpoints']:>6} "
            f"{row['restores']:>8} {row['torn_images']:>5} "
            f"{row['migrations']:>5}"
        )
    workers = results["sweep"]["workers_verified"]
    lines.append(
        f"sweep fingerprint {results['sweep']['fingerprint'][:16]} "
        f"(byte-identical at workers={workers[0]} and workers={workers[1]})"
    )
    idle = results["idle_overhead"]
    lines.append(
        f"zero-cost-when-off: idle service overhead "
        f"{idle['overhead_ratio']:.3f}x, identical schedule "
        f"({idle['no_service']['events']:,} events, fingerprint "
        f"{idle['no_service']['fingerprint'][:16]})"
    )
    lines.append(f"invariant violations across all cells: {results['violations']}")
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sweep + idle-overhead ceiling check (CI mode)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed repetitions for the idle-overhead pin (best-of)",
    )
    parser.add_argument(
        "--json", type=pathlib.Path, default=None,
        help="also write results to this path "
             "(default: results/P8_checkpoint.json)",
    )
    parser.add_argument(
        "--max-idle-overhead", type=float, default=1.05,
        help="smoke mode fails if the idle-service/no-service wall "
             "ratio exceeds this (the subsystem must be free when off)",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    results = run_all(smoke=args.smoke, repeats=args.repeats)
    print(render(results, mode))
    payload = {"mode": mode, "results": results}
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[wrote {args.json}]")
    else:
        print(f"[wrote {archive_json('P8_checkpoint', payload)}]")
    if results["violations"]:
        print(
            f"FAIL: {results['violations']} invariant violation(s) across "
            f"sweep cells",
            file=sys.stderr,
        )
        return 1
    ratio = results["idle_overhead"]["overhead_ratio"]
    if args.smoke and ratio > args.max_idle_overhead:
        print(
            f"FAIL: idle checkpoint-service overhead {ratio:.3f}x exceeds "
            f"ceiling {args.max_idle_overhead:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def test_checkpoint_tradeoff(benchmark, archive):
    """pytest-benchmark entry point (``python -m repro experiment P8``)."""
    results = run_simulated(benchmark, lambda: run_all(smoke=True, repeats=3))
    archive("P8_checkpoint", render(results, "smoke"))
    archive_json("P8_checkpoint", {"mode": "smoke", "results": results})
    assert results["violations"] == 0
    assert results["idle_overhead"]["identical_schedule"]
    rows = results["sweep"]["cells"]
    assert {row["policy"] for row in rows} == {"migrate", "checkpoint", "hybrid"}
    assert any(row["checkpoints"] > 0 for row in rows)


if __name__ == "__main__":
    raise SystemExit(main())
