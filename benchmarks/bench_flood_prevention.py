"""A3 — Flood-prevention ablation (thesis §3/6, [BSW89]).

MOSIX-style flood prevention: a host that just accepted a migration
counts the arrival against its load immediately, so a burst of
selections made from (identically) stale information cannot dogpile one
idle host.  The ablation removes the acceptance bias and the guest cap
and lets concurrent requesters pile onto whichever host the stale data
likes best.
"""

from __future__ import annotations

from repro import SpriteCluster
from repro.loadsharing import LoadSharingService
from repro.metrics import Table
from repro.sim import run_until_complete, spawn

from common import run_simulated

REQUESTERS = 6
JOB_CPU = 30.0


def run_case(flood_prevention: bool):
    cluster = SpriteCluster(workstations=REQUESTERS + 3, start_daemons=True, seed=7)
    service = LoadSharingService(cluster, architecture="probabilistic")
    cluster.standard_images()
    if not flood_prevention:
        # Ablate: accept any number of guests, bias nothing.
        for host in cluster.hosts:
            cluster.managers[host.address].accept_hook = (
                lambda args, host=host: host.input_idle_seconds()
                >= host.params.idle_input_threshold
            )
    cluster.run(until=90.0)   # gossip converges

    def job(proc):
        yield from proc.compute(JOB_CPU)
        return proc.pcb.current

    finals = []

    def requester(index):
        host = cluster.hosts[index]
        selector = service.selectors[host.address]
        granted = yield from selector.request(1)
        if granted:
            pcb, _ = host.spawn_process(
                _exec_job_factory(job, granted[0]), name=f"job{index}"
            )
        else:
            pcb, _ = host.spawn_process(job, name=f"job{index}")
        result = yield pcb.task.join()
        finals.append(result)

    tasks = [
        spawn(cluster.sim, requester(i), name=f"req{i}")
        for i in range(REQUESTERS)
    ]

    def joiner():
        for task in tasks:
            yield task.join()

    start = cluster.sim.now
    run_until_complete(cluster.sim, joiner(), name="joiner")
    makespan = cluster.sim.now - start
    from collections import Counter

    placement = Counter(finals)
    max_guests = max(placement.values())
    return {
        "makespan": makespan,
        "max_on_one_host": max_guests,
        "distinct_hosts": len(placement),
    }


def _exec_job_factory(job, target):
    from repro.migration import MigrationRefused

    def runner(proc):
        try:
            yield from proc.exec(job, host=target, image_path="/bin/sim")
        except MigrationRefused:
            pass
        yield from proc.exec(job, image_path="/bin/sim")

    return runner


def build_artifacts():
    with_fp = run_case(flood_prevention=True)
    without_fp = run_case(flood_prevention=False)
    table = Table(
        title="A3: flood prevention ablation (6 concurrent requesters, "
              "gossip selection)",
        columns=["variant", "makespan (s)", "max jobs on one host",
                 "distinct hosts used"],
        notes="without the acceptance bias/cap, stale gossip dogpiles "
              "one idle host ([BSW89])",
    )
    table.add_row("flood prevention ON", with_fp["makespan"],
                  with_fp["max_on_one_host"], with_fp["distinct_hosts"])
    table.add_row("flood prevention OFF", without_fp["makespan"],
                  without_fp["max_on_one_host"], without_fp["distinct_hosts"])
    return table, with_fp, without_fp


def test_a3_flood_prevention(benchmark, archive):
    table, with_fp, without_fp = run_simulated(benchmark, build_artifacts)
    archive("A3_flood_prevention", table.render())
    # The ablated run concentrates load; the protected run spreads it.
    assert without_fp["max_on_one_host"] > with_fp["max_on_one_host"]
    assert without_fp["makespan"] > with_fp["makespan"]
    assert with_fp["distinct_hosts"] >= without_fp["distinct_hosts"]
