"""E4 — Remote exec vs local exec (thesis ch. 7).

Migration at exec time is Sprite's cheap path: the old address space is
discarded, so only the PCB, open streams, and the argument/environment
bytes cross the wire.  The paper compares fork+exec locally against
fork+exec with migration, sweeping the argument size; rsh provides the
non-transparent alternative.
"""

from __future__ import annotations

from repro import KB, SpriteCluster
from repro.baselines import rsh_run
from repro.metrics import Table

from common import run_simulated

IMAGE = "/bin/cc"


def _target_program(proc):
    return 0
    yield  # pragma: no cover


def measure(kind: str, arg_bytes: int) -> float:
    """Elapsed fork+exec+exit time for one child under ``kind``."""
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    cluster.standard_images()
    a, b = cluster.hosts[0], cluster.hosts[1]

    def parent_local(proc):
        start = proc.now

        def child(cproc):
            yield from cproc.exec(
                _target_program, image_path=IMAGE, arg_bytes=arg_bytes
            )

        yield from proc.fork(child, name="child")
        yield from proc.wait()
        return proc.now - start

    def parent_remote(proc):
        start = proc.now

        def child(cproc):
            yield from cproc.exec(
                _target_program, image_path=IMAGE, arg_bytes=arg_bytes,
                host=b.address,
            )

        yield from proc.fork(child, name="child")
        yield from proc.wait()
        return proc.now - start

    def parent_rsh(proc):
        start = proc.now
        yield from rsh_run(proc, b, _rsh_child)
        return proc.now - start

    parents = {"local": parent_local, "remote-exec": parent_remote,
               "rsh": parent_rsh}
    # Warm both clients' image caches first, so we measure the steady
    # state the paper measures (compilers are always cached).
    def warm(proc):
        def child(cproc):
            yield from cproc.exec(_target_program, image_path=IMAGE)
        yield from proc.fork(child, name="warm")
        yield from proc.wait()
        return 0

    cluster.run_process(a, warm, name="warm-a")
    cluster.run_process(b, warm, name="warm-b")
    return cluster.run_process(a, parents[kind], name=kind)


def _rsh_child(proc):
    yield from proc.exec(_target_program, image_path=IMAGE)


def build_table() -> Table:
    table = Table(
        title="E4: fork+exec cost, local vs exec-time migration vs rsh "
              "(model ms, warm image caches)",
        columns=["mechanism", "args 2KB", "args 16KB", "args 64KB"],
    )
    sizes = (2 * KB, 16 * KB, 64 * KB)
    results = {}
    for kind in ("local", "remote-exec", "rsh"):
        row = [measure(kind, size) * 1e3 for size in sizes]
        results[kind] = row
        table.add_row(kind, *row)
    table.notes = (
        "remote exec adds state+args wire time to the local cost; "
        "no VM moves (thesis: exec-time migration is the cheap path)"
    )
    return table, results


def test_e4_exec_migration(benchmark, archive):
    table, results = run_simulated(benchmark, build_table)
    archive("E4_exec_migration", table.render())
    local, remote, rsh = results["local"], results["remote-exec"], results["rsh"]
    # Remote exec costs more than local, but stays the same order of
    # magnitude (no VM transfer).
    assert local[0] < remote[0] < 20 * local[0]
    # Argument size moves the remote cost (wire time), and barely moves
    # the local one.
    assert remote[2] > remote[0]
    assert abs(local[2] - local[0]) < 0.3 * local[0] + 5.0
