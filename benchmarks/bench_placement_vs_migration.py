"""E11 — Placement-only vs migration-with-eviction (thesis ch. 2/8).

The [ELZ88]/[KL88] debate, resolved Sprite's way: eviction migration is
justified less by load-balance gains than by *workstation autonomy*.
The scenario places a batch of long jobs on idle hosts whose owners
then return and stay.  Placement-only leaves guests squatting (owners
suffer); Sprite evicts them home (jobs slow down instead).
"""

from __future__ import annotations

from repro.baselines import run_placement_scenario
from repro.metrics import Table

from common import run_simulated


def build_artifacts():
    outcomes = {}
    for policy in ("placement", "sprite"):
        outcomes[policy] = run_placement_scenario(
            policy, hosts=6, jobs=5, job_cpu=120.0, owners_return_after=40.0
        )
    table = Table(
        title="E11: placement-only vs eviction migration "
              "(owners return mid-batch and stay)",
        columns=["policy", "mean turnaround (s)", "max turnaround (s)",
                 "owner interference (guest-busy s)", "evictions"],
        notes="interference = guest CPU seconds while the owner was present",
    )
    for policy, outcome in outcomes.items():
        table.add_row(
            policy,
            outcome.mean_turnaround,
            outcome.max_turnaround,
            outcome.owner_interference,
            outcome.evictions,
        )
    return table, outcomes


def test_e11_placement_vs_migration(benchmark, archive):
    table, outcomes = run_simulated(benchmark, build_artifacts)
    archive("E11_placement_vs_migration", table.render())
    placement = outcomes["placement"]
    sprite = outcomes["sprite"]
    # Placement-only makes owners host guests for (most of) the jobs'
    # remaining lifetimes; Sprite's interference is near zero.
    assert placement.owner_interference > 60.0
    assert sprite.owner_interference < placement.owner_interference / 5
    # The price: evicted jobs pile up at home and finish later.
    assert sprite.evictions >= 1
    assert sprite.mean_turnaround > placement.mean_turnaround
    # Both policies finish all jobs.
    assert len(placement.turnarounds) == 5
    assert len(sprite.turnarounds) == 5
