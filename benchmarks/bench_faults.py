"""P3 — Fault-injection subsystem overhead benchmark.

``repro.faults`` promises to be free when unused: without an injector,
``lan.fabric`` stays ``None`` and every fault hook in the LAN, kernel,
and FS layers hides behind a test a healthy run already made.  This
benchmark pins that promise down by timing the same deterministic
cluster workload (the E10 production-usage slice from ``bench_engine``)
in three configurations:

* ``no_injector``    — the PR-2 status quo: no fault machinery at all.
* ``idle_injector``  — a :class:`~repro.faults.FaultInjector` installed
  with an *empty* plan: the link fabric answers every message, but no
  fault ever fires.  This is the worst case a fault-aware-but-healthy
  experiment pays.
* ``capped_injector`` — the idle injector plus every backpressure cap
  enabled at a bound the workload never reaches: admission checks run
  on every migration but never bind, so the event schedule must be
  *identical* to ``idle_injector`` (the strict zero-cost-when-off pin
  for the overload-backpressure layer).
* ``chaos_smoke``    — informative only: a short ``run_chaos`` gauntlet,
  so the cost of an actual fault storm is on record next to the idle
  numbers.

A second ablation pins the migration transaction journal (PR 4): the
same fault-free migration-churn workload with
``migration_txn_journal`` on vs off must produce an *identical* event
schedule (the journal is bookkeeping, never a scheduling participant —
this is the strict pin) and stay within ``--max-journal-overhead``
wall time.  The measured cost is ~1.005x; the default ceiling (1.05)
sits above this noisy-CI measurement floor, not above the true cost.

The idle/no-injector wall-time ratio is the headline: in ``--smoke``
mode the run fails if it exceeds ``--max-overhead`` (default 1.15, i.e.
the injector must stay within measurement noise).  The archived
``BENCH_engine.json`` e10_slice numbers are printed for cross-PR
context when present, but never asserted against — they were measured
on different hardware.

Run standalone (``python benchmarks/bench_faults.py [--smoke]``) or via
the pytest entry; results are archived as ``P3_faults.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Any, Callable, Dict, Optional, Tuple

if __package__ is None or __package__ == "":
    _SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

try:
    from common import archive_json, run_simulated
except ImportError:  # imported as benchmarks.bench_faults
    from .common import archive_json, run_simulated  # type: ignore

#: Workload sizes: full mode for trend numbers, smoke mode for CI.
#: The e10 sizes match ``bench_engine.SIZES`` so the ``no_injector``
#: row is directly comparable with the archived engine numbers.
SIZES = {
    "full": {
        "hosts": 6, "duration": 2 * 3600.0, "chaos_duration": 120.0,
        "migrations": 64,
    },
    "smoke": {
        "hosts": 3, "duration": 600.0, "chaos_duration": 60.0,
        "migrations": 48,
    },
}

#: Archived engine benchmark (repo root) for the informative comparison.
ENGINE_BASELINE = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _run_e10(
    hosts: int, duration: float, with_injector: bool, with_caps: bool = False
) -> Callable[[], Any]:
    def build_and_run():
        from repro import SpriteCluster
        from repro.loadsharing import LoadSharingService
        from repro.workloads import ActivityModel, UsageSimulation

        if with_caps:
            # Backpressure caps on, but orders of magnitude above what
            # the workload can reach: checked on every migration, bound
            # on none.
            from repro.config import ClusterParams

            params = ClusterParams(
                seed=3,
                migration_max_incoming=1_000_000,
                migration_max_outgoing=1_000_000,
                migd_max_pending=1_000_000,
            )
            cluster = SpriteCluster(
                workstations=hosts, start_daemons=True, params=params
            )
        else:
            cluster = SpriteCluster(
                workstations=hosts, start_daemons=True, seed=3
            )
        service = LoadSharingService(cluster, architecture="centralized")
        cluster.standard_images()
        if with_injector:
            from repro.faults import FaultPlan

            cluster.faults(plan=FaultPlan(), service=service)
        usage = UsageSimulation(
            cluster,
            service,
            duration=duration,
            activity=ActivityModel(seed=17),
            think_time=60.0,
            batch_probability=0.08,
            batch_width=4,
            batch_unit_cpu=120.0,
            seed=17,
        )
        usage.run()
        return cluster.sim
    return build_and_run


def _run_migration_churn(migrations: int, journal: bool) -> Callable[[], Any]:
    """Fault-free migration ping-pong: one process with an open stream,
    migrated back and forth ``migrations`` times while it computes and
    writes.  The only variable is the write-ahead journal flag."""

    def build_and_run():
        from repro import SpriteCluster
        from repro.config import ClusterParams
        from repro.fs import OpenMode
        from repro.sim import Sleep, spawn

        params = ClusterParams(seed=5, migration_txn_journal=journal)
        cluster = SpriteCluster(workstations=3, params=params)
        cluster.standard_images()
        a, b = cluster.hosts[0], cluster.hosts[1]

        def job(proc):
            fd = yield from proc.open(
                "/bench-churn", OpenMode.WRITE | OpenMode.CREATE
            )
            for _ in range(migrations * 6):
                yield from proc.compute(0.5)
                yield from proc.write(fd, 256)
            yield from proc.close(fd)
            return 0

        pcb, _ = a.spawn_process(job, name="churn")

        def driver():
            yield Sleep(0.5)
            here, there = a, b
            for _ in range(migrations):
                yield from cluster.managers[here.address].migrate(
                    pcb, there.address, reason="bench"
                )
                here, there = there, here
                yield Sleep(1.0)

        spawn(cluster.sim, driver(), name="bench-driver")
        cluster.run_until_complete(pcb.task)
        return cluster.sim

    return build_and_run


def _measure(build_and_run: Callable[[], Any]) -> Tuple[float, Any]:
    start = time.perf_counter()
    sim = build_and_run()
    wall = time.perf_counter() - start
    return wall, sim


def _timed_row(build_and_run: Callable[[], Any], repeats: int) -> Dict[str, float]:
    walls = []
    events = 0
    for _ in range(repeats):
        wall, sim = _measure(build_and_run)
        walls.append(wall)
        events = getattr(sim, "events_fired", 0)
    wall = min(walls)
    return {
        "events": events,
        "wall_s": round(wall, 6),
        "events_per_s": round(events / wall) if wall > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_all(smoke: bool = False, repeats: int = 3) -> Dict[str, Any]:
    sizes = SIZES["smoke" if smoke else "full"]
    hosts, duration = sizes["hosts"], sizes["duration"]

    # One untimed warm-up so import/allocation costs don't land on
    # whichever configuration happens to run first (visible at repeats=1).
    _measure(_run_e10(hosts, min(duration, 120.0), False))

    results: Dict[str, Any] = {
        "no_injector": _timed_row(_run_e10(hosts, duration, False), repeats),
        "idle_injector": _timed_row(_run_e10(hosts, duration, True), repeats),
        "capped_injector": _timed_row(
            _run_e10(hosts, duration, True, with_caps=True), repeats
        ),
    }
    # An idle fabric must not perturb the simulation itself: no RNG
    # draws, no extra delays, so the event count is identical.
    assert results["idle_injector"]["events"] == results["no_injector"]["events"], (
        "idle injector changed the event schedule: "
        f"{results['idle_injector']['events']} != {results['no_injector']['events']}"
    )
    # Backpressure caps that never bind are pure comparisons: they must
    # not add, remove, or reorder a single event either.
    assert results["capped_injector"]["events"] == results["no_injector"]["events"], (
        "unbinding backpressure caps changed the event schedule: "
        f"{results['capped_injector']['events']} != {results['no_injector']['events']}"
    )
    results["overhead_ratio"] = round(
        results["idle_injector"]["wall_s"] / results["no_injector"]["wall_s"], 4
    )

    # Migration-txn-journal ablation: journaling is pure bookkeeping, so
    # it must never perturb the event schedule of a fault-free run.
    # The 2% wall-time pin is far below ambient scheduler noise for a
    # sequential best-of-N, so the two configurations are sampled
    # *interleaved* (on, off, on, off, ...): both see the same noise
    # environment and the min-of-N ratio converges on the true cost.
    migrations = sizes["migrations"]
    _measure(_run_migration_churn(max(migrations // 4, 4), True))
    on_build = _run_migration_churn(migrations, True)
    off_build = _run_migration_churn(migrations, False)
    on_walls, off_walls = [], []
    on_events = off_events = 0
    for _ in range(max(repeats, 3) * 4):
        wall, sim = _measure(on_build)
        on_walls.append(wall)
        on_events = getattr(sim, "events_fired", 0)
        wall, sim = _measure(off_build)
        off_walls.append(wall)
        off_events = getattr(sim, "events_fired", 0)
    journal_on = {
        "events": on_events,
        "wall_s": round(min(on_walls), 6),
        "events_per_s": round(on_events / min(on_walls)),
    }
    journal_off = {
        "events": off_events,
        "wall_s": round(min(off_walls), 6),
        "events_per_s": round(off_events / min(off_walls)),
    }
    assert journal_on["events"] == journal_off["events"], (
        "txn journal changed the event schedule: "
        f"{journal_on['events']} != {journal_off['events']}"
    )
    results["txn_journal"] = {
        "migrations": migrations,
        "journal_on": journal_on,
        "journal_off": journal_off,
        "overhead_ratio": round(
            journal_on["wall_s"] / journal_off["wall_s"], 4
        ),
    }

    from repro.faults import run_chaos

    start = time.perf_counter()
    report = run_chaos(
        seed=0, workstations=max(hosts, 4), duration=sizes["chaos_duration"],
        jobs=6, job_length=4.0,
    )
    results["chaos_smoke"] = {
        "wall_s": round(time.perf_counter() - start, 6),
        "faults": report.faults,
        "jobs_finished": report.jobs_finished,
        "violations": len(report.violations),
    }
    return results


def render(results: Dict[str, Any], mode: str) -> str:
    lines = [
        f"P3: fault-injection overhead ({mode} sizes, best-of-N wall time)",
        f"{'configuration':<16} {'events':>10} {'wall_s':>10} {'events/s':>12}",
    ]
    for name in ("no_injector", "idle_injector", "capped_injector"):
        row = results[name]
        lines.append(
            f"{name:<16} {row['events']:>10,.0f} {row['wall_s']:>10.3f} "
            f"{row['events_per_s']:>12,.0f}"
        )
    lines.append(f"idle-injector overhead: {results['overhead_ratio']:.3f}x")
    txn = results["txn_journal"]
    for name in ("journal_on", "journal_off"):
        row = txn[name]
        lines.append(
            f"{name:<16} {row['events']:>10,.0f} {row['wall_s']:>10.3f} "
            f"{row['events_per_s']:>12,.0f}"
        )
    lines.append(
        f"txn-journal overhead ({txn['migrations']} migrations, identical "
        f"schedule): {txn['overhead_ratio']:.3f}x"
    )
    chaos = results["chaos_smoke"]
    lines.append(
        f"chaos gauntlet (informative): {chaos['wall_s']:.3f}s wall, "
        f"{chaos['faults']} faults, {chaos['jobs_finished']} jobs finished, "
        f"{chaos['violations']} violations"
    )
    if mode == "full" and ENGINE_BASELINE.is_file():
        try:
            archived = json.loads(ENGINE_BASELINE.read_text())
            slice_row = archived["after"]["e10_slice"]
            lines.append(
                "BENCH_engine.json e10_slice (archived, different hardware): "
                f"{slice_row['events']:,} events in {slice_row['wall_s']:.3f}s"
            )
        except (KeyError, ValueError):
            pass
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes + overhead ceiling check (CI mode)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repetitions (best-of)"
    )
    parser.add_argument(
        "--json", type=pathlib.Path, default=None,
        help="also write results to this path (default: results/P3_faults.json)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=1.15,
        help="smoke mode fails if idle-injector/no-injector wall ratio "
        "exceeds this",
    )
    parser.add_argument(
        "--max-journal-overhead", type=float, default=1.05,
        help="smoke mode fails if the journal-on/journal-off wall ratio "
        "for fault-free migrations exceeds this (true cost ~1.005x; the "
        "ceiling allows for shared-runner timing noise)",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    results = run_all(smoke=args.smoke, repeats=args.repeats)
    print(render(results, mode))
    payload = {"mode": mode, "results": results}
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[wrote {args.json}]")
    else:
        print(f"[wrote {archive_json('P3_faults', payload)}]")
    if args.smoke and results["overhead_ratio"] > args.max_overhead:
        print(
            f"FAIL: idle injector overhead {results['overhead_ratio']:.3f}x "
            f"exceeds ceiling {args.max_overhead:.2f}x",
            file=sys.stderr,
        )
        return 1
    journal_ratio = results["txn_journal"]["overhead_ratio"]
    if args.smoke and journal_ratio > args.max_journal_overhead:
        print(
            f"FAIL: txn-journal overhead {journal_ratio:.3f}x exceeds "
            f"ceiling {args.max_journal_overhead:.2f}x",
            file=sys.stderr,
        )
        return 1
    if results["chaos_smoke"]["violations"]:
        print(
            f"FAIL: chaos gauntlet reported "
            f"{results['chaos_smoke']['violations']} invariant violation(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def test_faults_overhead(benchmark, archive):
    """pytest-benchmark entry point (``python -m repro experiment P3``)."""
    # Best-of-3 even under pytest: the smoke runs are ~30 ms each, and
    # single measurements at that scale are dominated by scheduler noise.
    results = run_simulated(benchmark, lambda: run_all(smoke=True, repeats=3))
    archive("P3_faults", render(results, "smoke"))
    archive_json("P3_faults", {"mode": "smoke", "results": results})
    assert results["no_injector"]["events"] > 0
    assert results["chaos_smoke"]["violations"] == 0
    txn = results["txn_journal"]
    assert txn["journal_on"]["events"] == txn["journal_off"]["events"]


if __name__ == "__main__":
    raise SystemExit(main())
