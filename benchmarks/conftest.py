"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation, prints it, and archives the rendering under
``benchmarks/results/`` so `pytest benchmarks/ --benchmark-only` leaves
the full set of artifacts behind.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def archive():
    """Callable: archive(name, rendered_text) -> path."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _archive(name: str, text: str) -> pathlib.Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[archived to {path}]")
        return path

    return _archive
