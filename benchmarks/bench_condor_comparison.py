"""B1 — Sprite eviction-migration vs Condor checkpoint/restart (ch. 2).

Both systems vacate a workstation when its owner returns; they differ
in what that costs the displaced job.  Condor kills and restarts from
the last periodic checkpoint: work since the checkpoint is lost and
every checkpoint writes the whole image.  Sprite freezes, flushes dirty
pages, and continues — nothing is lost and nothing is written except
what was dirty.

Scenario: one long job runs on the only idle host; mid-run the owner
returns briefly, then leaves.  The job must end up complete either way;
the comparison is the overhead.
"""

from __future__ import annotations

from repro import MB, SpriteCluster
from repro.baselines import CondorJob, CondorScheduler
from repro.loadsharing import LoadSharingService, ReExporter
from repro.metrics import Table
from repro.sim import Sleep, spawn

from common import run_simulated

JOB_CPU = 120.0
IMAGE = 2 * MB
OWNER_RETURNS_AT = 60.0


def run_condor():
    cluster = SpriteCluster(workstations=3, start_daemons=True, seed=1)
    cluster.run(until=45.0)
    scheduler = CondorScheduler(cluster, checkpoint_period=30.0)
    scheduler.submit(CondorJob(job_id=0, cpu_seconds=JOB_CPU, image_bytes=IMAGE))
    scheduler.start()

    def owner():
        yield Sleep(OWNER_RETURNS_AT)
        for host in cluster.hosts:
            host.user_input()
        yield Sleep(1.0)
        for host in cluster.hosts:
            host.user_leaves()

    spawn(cluster.sim, owner(), name="owner", daemon=True)

    def waiter():
        while not scheduler.all_done:
            yield Sleep(5.0)

    task = spawn(cluster.sim, waiter(), name="waiter")
    cluster.run_until_complete(task)
    job = scheduler.results[0].job
    return {
        "turnaround": scheduler.results[0].turnaround,
        "lost_cpu": job.lost_cpu,
        "ckpt_bytes": job.checkpoints * IMAGE,
        "restarts": job.restarts,
    }


def run_sprite():
    cluster = SpriteCluster(workstations=3, start_daemons=True, seed=1)
    service = LoadSharingService(cluster, architecture="centralized")
    ReExporter(cluster, service)
    cluster.standard_images()
    cluster.run(until=45.0)
    submitter = cluster.hosts[0]
    client = service.mig_client(submitter)

    def unit(proc, cpu):
        yield from proc.use_memory(IMAGE)
        yield from proc.compute(cpu, dirty_bytes_per_second=8192)
        return 0

    def coordinator(proc):
        finished = yield from client.run_batch(
            proc, [(unit, (JOB_CPU,), "job")], image_path="/bin/sim",
            keep_one_local=False,
        )
        return finished

    pcb, _ = submitter.spawn_process(coordinator, name="submit")
    submitted_at = cluster.sim.now

    def owner():
        yield Sleep(OWNER_RETURNS_AT)
        for host in cluster.hosts[1:]:
            host.user_input()
        yield Sleep(1.0)
        for host in cluster.hosts[1:]:
            host.user_leaves()

    spawn(cluster.sim, owner(), name="owner", daemon=True)
    finished = cluster.run_until_complete(pcb.task)
    records = [r for r in cluster.migration_records() if not r.refused]
    evictions = [r for r in records if r.reason == "eviction"]
    flushed = sum(
        (r.vm.bytes_during_freeze if r.vm else 0) for r in evictions
    )
    return {
        "turnaround": cluster.sim.now - submitted_at,
        "lost_cpu": 0.0,                      # migration loses nothing
        "ckpt_bytes": flushed,                # only dirty pages moved
        "restarts": len(evictions),
    }


def build_artifacts():
    condor = run_condor()
    sprite = run_sprite()
    table = Table(
        title="B1: displaced-job overhead, Sprite migration vs Condor "
              "checkpoint/restart (120s job, owner returns at +60s)",
        columns=["system", "turnaround (s)", "CPU lost (s)",
                 "image bytes written (MB)", "restarts/evictions"],
    )
    table.add_row("sprite", sprite["turnaround"], sprite["lost_cpu"],
                  sprite["ckpt_bytes"] / MB, sprite["restarts"])
    table.add_row("condor", condor["turnaround"], condor["lost_cpu"],
                  condor["ckpt_bytes"] / MB, condor["restarts"])
    return table, sprite, condor


def test_b1_condor_comparison(benchmark, archive):
    table, sprite, condor = run_simulated(benchmark, build_artifacts)
    archive("B1_condor_comparison", table.render())
    # Sprite loses no work; Condor loses whatever ran since a checkpoint.
    assert sprite["lost_cpu"] == 0.0
    assert condor["lost_cpu"] > 0.0
    # Condor writes whole images repeatedly; Sprite only dirty pages.
    assert condor["ckpt_bytes"] > sprite["ckpt_bytes"]
    # Both finish; Sprite's displaced job completes sooner.
    assert sprite["turnaround"] < condor["turnaround"]
