"""E10 — Production usage statistics (thesis ch. 8).

The thesis reports a month of production use: remote execs and
evictions in the thousands, yet total processor utilization of just
2.3 % — the cluster is mostly idle capacity that migration lets users
harvest.  We drive a live cluster through a compressed window (a
simulated working day across 10 hosts) with the full stack running —
activity traces, migd, pmake-style batches, eviction — and report the
same rows, plus the paper's headline utilization band.
"""

from __future__ import annotations

from repro import SpriteCluster
from repro.loadsharing import LoadSharingService
from repro.metrics import Table
from repro.workloads import ActivityModel, UsageSimulation

from common import run_simulated

HOSTS = 10
DURATION = 8 * 3600.0     # one working day, compressed


def run_window():
    cluster = SpriteCluster(workstations=HOSTS, start_daemons=True, seed=3)
    for host in cluster.hosts:
        host.cpu.quantum = 0.25     # coarse scheduling for the long window
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.standard_images()
    usage = UsageSimulation(
        cluster,
        service,
        duration=DURATION,
        activity=ActivityModel(seed=17),
        think_time=120.0,
        batch_probability=0.08,
        batch_width=4,
        batch_unit_cpu=180.0,
        seed=17,
    )
    report = usage.run()
    return report


def build_artifacts():
    report = run_window()
    table = Table(
        title="E10: usage statistics over a simulated working day "
              "(paper's month: thousands of remote execs, 2.3% utilization)",
        columns=["metric", "value"],
    )
    for key, value in report.rows().items():
        table.add_row(key, value)
    return table, report


def test_e10_usage_window(benchmark, archive):
    table, report = run_simulated(benchmark, build_artifacts)
    archive("E10_usage", table.render())
    # The shape of production use: work happened, some of it remote,
    # evictions occurred, and the cluster still sat mostly idle.
    assert report.interactive_jobs > 50
    assert report.remote_execs > 0
    assert report.migrations_total >= report.remote_execs
    assert report.evictions >= 1
    assert report.processor_utilization < 15.0      # mostly idle capacity
    assert report.mean_idle_fraction > 0.4
