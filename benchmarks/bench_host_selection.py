"""E7 — Host-selection architectures (thesis ch. 6, Table 6.2).

The four designs under one request workload, across cluster sizes:
request latency (the thesis measured 56 ms to select and release a
host through migd, including process overheads), control-message load
(the scalability axis), and assignment quality.  The thesis's
conclusion — centralization wins nearly every axis — should be visible
in the rows.
"""

from __future__ import annotations

from repro import SpriteCluster
from repro.loadsharing import ARCHITECTURES, LoadSharingService
from repro.metrics import Table
from repro.sim import Sleep, run_until_complete

from common import run_simulated

ROUNDS = 10


def exercise(architecture: str, hosts: int):
    cluster = SpriteCluster(workstations=hosts, start_daemons=True)
    service = LoadSharingService(cluster, architecture=architecture)
    cluster.run(until=60.0)
    messages_before = cluster.lan.messages_sent
    window_start = cluster.sim.now
    selector = service.selector_for(cluster.hosts[0])

    def client():
        total = 0
        for _ in range(ROUNDS):
            granted = yield from selector.request(2)
            total += len(granted)
            yield Sleep(1.0)
            yield from selector.release(granted)
            yield Sleep(2.0)
        return total

    granted = run_until_complete(cluster.sim, client(), name="client")
    window = cluster.sim.now - window_start
    return {
        "granted": granted,
        "latency_ms": 1000.0 * selector.metrics.mean_latency(),
        "messages_per_s": (cluster.lan.messages_sent - messages_before) / window,
        "conflicts": service.total_conflicts(),
    }


def build_artifacts():
    table = Table(
        title="E7: host selection architectures (cf. Table 6.2; paper "
              "measured 56 ms select+release via migd)",
        columns=["architecture", "hosts", "granted", "latency (ms)",
                 "msgs/s on LAN", "conflicts"],
        notes="identical request workload; messages include the "
              "facility's own update traffic",
    )
    stats = {}
    for architecture in ARCHITECTURES:
        for hosts in (8, 24, 48):
            row = exercise(architecture, hosts)
            stats[(architecture, hosts)] = row
            table.add_row(
                architecture, hosts, row["granted"], row["latency_ms"],
                row["messages_per_s"], row["conflicts"],
            )
    return table, stats


def test_e7_host_selection(benchmark, archive):
    table, stats = run_simulated(benchmark, build_artifacts)
    archive("E7_host_selection", table.render())
    # Everyone can serve a small cluster.
    for architecture in ARCHITECTURES:
        assert stats[(architecture, 8)]["granted"] >= ROUNDS
    # Centralized request latency is low single-digit ms in the model
    # (the paper's 56 ms includes 1990 process overheads).
    assert stats[("centralized", 24)]["latency_ms"] < 20.0
    # Gossip burns far more background messages than the central server
    # as the cluster grows — the thesis's scalability argument.
    assert (
        stats[("probabilistic", 24)]["messages_per_s"]
        > 2 * stats[("centralized", 24)]["messages_per_s"]
    )
    # And the absolute gap widens with cluster size (the TL88
    # scalability argument: both scale linearly in hosts, but gossip's
    # per-host constant — fanout messages every load period — dwarfs
    # one availability update per period, so its wire load hits the
    # network's ceiling at a fraction of the cluster size).
    assert (
        stats[("probabilistic", 48)]["messages_per_s"]
        > 4 * stats[("centralized", 48)]["messages_per_s"]
    )


def test_a1_version_negotiation_guard(benchmark, archive):
    """A1 — migration version numbers (§4.5): a cluster rolling out a
    new kernel version refuses mixed-version migrations instead of
    corrupting state."""
    from repro.migration import MigrationRefused
    from repro.sim import Sleep, spawn

    cluster = SpriteCluster(workstations=2, start_daemons=False)
    a, b = cluster.hosts[0], cluster.hosts[1]
    old_version = cluster.params.migration_version - 1
    manager_b = cluster.managers[b.address]

    def old_negotiate(args):
        ours = old_version
        if args["version"] != ours:
            return {"accept": False, "why": "migration version mismatch"}
        return {"accept": True}
        yield  # pragma: no cover

    manager_b.host.rpc.register("mig.negotiate", old_negotiate)

    def job(proc):
        yield from proc.compute(2.0)
        return 0

    pcb, _ = a.spawn_process(job, name="job")
    outcome = []

    def driver():
        yield Sleep(0.1)
        try:
            yield from cluster.managers[a.address].migrate(pcb, b.address)
            outcome.append("migrated")
        except MigrationRefused:
            outcome.append("refused")

    spawn(cluster.sim, driver(), name="driver")
    run_simulated(benchmark, lambda: cluster.run_until_complete(pcb.task))
    archive(
        "A1_version_guard",
        f"A1: mixed-version migration outcome: {outcome[0]} "
        f"(new={cluster.params.migration_version}, old={old_version})",
    )
    assert outcome == ["refused"]
