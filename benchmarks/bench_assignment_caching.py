"""S2 — Host-assignment caching (thesis ch. 9 future work).

"Host assignments may be cached effectively to reduce the rate of
requests to a central server."  The extension wraps a selector with a
short-TTL local cache of released hosts; a bursty client (pmake-style
acquire/release churn) then bothers migd far less often at the same
grant rate.
"""

from __future__ import annotations

from repro import SpriteCluster
from repro.loadsharing import CachingSelector, LoadSharingService
from repro.metrics import Table
from repro.sim import Sleep, run_until_complete

from common import run_simulated

ROUNDS = 20


def churn(cached: bool):
    cluster = SpriteCluster(workstations=6, start_daemons=True, seed=2)
    service = LoadSharingService(cluster, architecture="centralized")
    cluster.run(until=45.0)
    selector = service.selector_for(cluster.hosts[0])
    if cached:
        selector = CachingSelector(selector, ttl=15.0)
    requests_before = service.migd.requests_served

    def client():
        granted_total = 0
        for _ in range(ROUNDS):
            granted = yield from selector.request(2)
            granted_total += len(granted)
            yield Sleep(1.0)              # short job
            yield from selector.release(granted)
            yield Sleep(0.5)              # brief gap, then next burst
        return granted_total

    granted_total = run_until_complete(cluster.sim, client(), name="client")
    return {
        "granted": granted_total,
        "server_requests": service.migd.requests_served - requests_before,
        "latency_ms": 1e3 * selector.metrics.mean_latency(),
    }


def build_artifacts():
    plain = churn(cached=False)
    cached = churn(cached=True)
    table = Table(
        title="S2: host-assignment caching (ch. 9 future work) — "
              "bursty acquire/release client",
        columns=["selector", "hosts granted", "migd requests",
                 "mean latency (ms)"],
        notes="the cache reuses released hosts within its TTL, cutting "
              "the central server's request rate",
    )
    table.add_row("plain centralized", plain["granted"],
                  plain["server_requests"], plain["latency_ms"])
    table.add_row("with assignment cache", cached["granted"],
                  cached["server_requests"], cached["latency_ms"])
    return table, plain, cached


def test_s2_assignment_caching(benchmark, archive):
    table, plain, cached = run_simulated(benchmark, build_artifacts)
    archive("S2_assignment_caching", table.render())
    # Same work done...
    assert cached["granted"] == plain["granted"]
    # ...with a fraction of the server traffic and lower request latency.
    assert cached["server_requests"] < plain["server_requests"] / 3
    assert cached["latency_ms"] < plain["latency_ms"]
