"""Helpers importable by the benchmark modules."""

from __future__ import annotations


def run_simulated(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark.

    The simulations are deterministic and their *simulated* results are
    the artifact; wall-clock timing is recorded once for bookkeeping
    rather than statistics.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
