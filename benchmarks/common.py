"""Helpers importable by the benchmark modules."""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def sweep_workers(cap: int = 4) -> int:
    """Worker count for forked sweep fan-out: the granted cores, capped.

    Results are index-merged and deterministic for any value, so this
    only changes wall time, never artifacts.
    """
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    return max(1, min(cap, cores))


def run_simulated(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark.

    The simulations are deterministic and their *simulated* results are
    the artifact; wall-clock timing is recorded once for bookkeeping
    rather than statistics.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def archive_json(name: str, payload: Dict[str, Any]) -> pathlib.Path:
    """Write ``payload`` as ``benchmarks/results/<name>.json``.

    Machine-readable companion to the rendered ``*.txt`` artifacts the
    ``archive`` fixture produces; downstream tooling (CI trend tracking,
    the engine benchmark) reads these instead of scraping tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
