"""E8 — Eviction measurements (thesis ch. 8).

When a user returns, how long until their workstation is theirs again?
The thesis measures eviction time as a function of the foreign
process's footprint: the dominant term is flushing dirty pages to the
backing file.  We sweep dirty VM and count of foreign processes.
"""

from __future__ import annotations

from repro import MB, SpriteCluster
from repro.metrics import Series, Table
from repro.sim import Sleep, spawn

from common import run_simulated

DIRTY_MB = (0, 1, 2, 4)


def evict_with(dirty_mb: int, guests: int = 1):
    cluster = SpriteCluster(workstations=2, start_daemons=False)
    home, host = cluster.hosts[0], cluster.hosts[1]
    evictor = cluster.evictors[1]

    def job(proc):
        yield from proc.use_memory(max(dirty_mb, 1) * MB)
        if dirty_mb:
            yield from proc.dirty_memory(dirty_mb * MB)
        yield from proc.compute(300.0)
        return 0

    pcbs = [home.spawn_process(job, name=f"guest{i}")[0] for i in range(guests)]
    events = []

    def driver():
        yield Sleep(1.0)
        for pcb in pcbs:
            yield from cluster.managers[home.address].migrate(pcb, host.address)
        yield Sleep(5.0)
        # Guests re-dirty their memory while working on the target.
        for pcb in pcbs:
            pcb.vm.touch(dirty_mb * MB, write=True)
        host.user_input()
        event = yield from evictor.evict_now()
        events.append(event)
        # Don't wait 300s of compute: the measurement is done.
        for pcb in pcbs:
            if pcb.task is not None:
                pcb.task.interrupt(("signal", 9))

    task = spawn(cluster.sim, driver(), name="driver")
    cluster.run_until_complete(task)
    return events[0]


def build_artifacts():
    figure = Series(
        title="E8: host reclaim time vs dirty VM of the foreign process",
        x_label="dirty VM (MB)",
        y_label="reclaim time (s)",
    )
    table = Table(
        title="E8: eviction on user return",
        columns=["dirty VM (MB)", "guests", "reclaim (s)", "victims"],
        notes="reclaim = input event until last foreign process gone; "
              "dominated by the dirty-page flush (Sprite policy)",
    )
    results = {}
    for dirty in DIRTY_MB:
        event = evict_with(dirty)
        results[dirty] = event
        figure.add_point("1 guest", dirty, event.reclaim_seconds)
        table.add_row(dirty, 1, event.reclaim_seconds, event.victims)
    multi = evict_with(1, guests=3)
    table.add_row(1, 3, multi.reclaim_seconds, multi.victims)
    return figure, table, results, multi


def test_e8_eviction(benchmark, archive):
    figure, table, results, multi = run_simulated(benchmark, build_artifacts)
    archive("E8_eviction", figure.render() + "\n\n" + table.render())
    # Clean guests leave in well under a second.
    assert results[0].reclaim_seconds < 0.5
    # Reclaim grows roughly linearly with dirty memory.
    assert results[4].reclaim_seconds > 2 * results[1].reclaim_seconds
    # Multiple guests take longer than one.
    assert multi.victims == 3
    assert multi.reclaim_seconds > results[1].reclaim_seconds
