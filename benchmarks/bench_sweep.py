"""P2 — Copy-on-write sweep runner: setup cost and matrix wall time.

Two numbers justify ``repro.snapshot``:

* **Per-cell setup cost** — what a sweep cell pays before its first
  simulated event.  The fresh baseline builds the cluster inside each
  cell's child process; the forked path materializes the warmed base
  once in the parent and gives every cell a kernel-level
  copy-on-write image (``os.fork``), so its cost is a small constant
  independent of base size.  The smoke gate asserts forked setup is
  at most half the fresh build, per cell.
* **Crash-matrix wall time** — the 88-cell matrix of
  :mod:`repro.faults.crashmatrix`, fresh-sequential (the pre-snapshot
  code path) vs ``run_matrix`` at ``--workers`` 1 and 4 — with the
  byte-identical ``MatrixReport.fingerprint`` checked across all
  three, because a parallel sweep that changes answers is worthless.

Run standalone (``python benchmarks/bench_sweep.py [--smoke]``) or via
pytest; ``--json`` archives machine-readable results (the checked-in
before/after record lives in ``BENCH_sweep.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Any, Dict, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster import SpriteCluster  # noqa: E402
from repro.faults.crashmatrix import (  # noqa: E402
    MatrixReport,
    matrix_cells,
    run_cell,
    run_matrix,
)
from repro.loadsharing import LoadSharingService  # noqa: E402
from repro.snapshot import SweepRunner  # noqa: E402

from common import archive_json, run_simulated  # noqa: E402

SIZES = {
    "full": {"base_hosts": 24, "setup_cells": 64, "matrix_cells": None},
    "smoke": {"base_hosts": 16, "setup_cells": 16, "matrix_cells": 8},
}

#: The smoke gate: a forked cell's setup must cost at most this
#: fraction of a fresh in-child build of the same base.
SETUP_RATIO_CEILING = 0.5

#: Full-mode parallel gate: workers=4 must reach this fraction of the
#: ideal speedup on the cores actually available — 3x on a 4-core
#: machine, a no-regression floor (0.75x) on a single-core container,
#: where parallel wall-clock gains are physically impossible.
PARALLEL_EFFICIENCY_FLOOR = 0.75


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Setup-cost measurement
# ----------------------------------------------------------------------
def build_warm_base(hosts: int) -> SpriteCluster:
    """A chaos-grade base: traced cluster + images + load sharing."""
    cluster = SpriteCluster(workstations=hosts, seed=0, trace=True)
    cluster.standard_images()
    LoadSharingService(cluster, architecture="centralized")
    return cluster


def _noop_cell(cluster: Any, cell: Any) -> int:
    return 0


def measure_setup(hosts: int, cells: int) -> Dict[str, float]:
    """Per-cell setup wall time, fresh-build vs copy-on-write fork.

    Both paths run the same no-op cell through the same fork/pipe
    harness, so the difference they report is purely "who builds the
    cluster, and how often".
    """
    fresh = SweepRunner(lambda: build_warm_base(hosts), workers=1)
    fresh.run([0], _noop_cell)  # warm the harness
    started = time.perf_counter()
    fresh.run(list(range(cells)), _noop_cell)
    fresh_per_cell = (time.perf_counter() - started) / cells

    started = time.perf_counter()
    base = build_warm_base(hosts)
    base_build = time.perf_counter() - started
    forked = SweepRunner(base, workers=1)
    forked.run([0], _noop_cell)
    started = time.perf_counter()
    forked.run(list(range(cells)), _noop_cell)
    fork_per_cell = (time.perf_counter() - started) / cells

    return {
        "base_hosts": hosts,
        "cells": cells,
        "base_build_s": round(base_build, 6),
        "fresh_per_cell_s": round(fresh_per_cell, 6),
        "fork_per_cell_s": round(fork_per_cell, 6),
        "fork_vs_fresh_ratio": round(fork_per_cell / fresh_per_cell, 4),
    }


# ----------------------------------------------------------------------
# Matrix wall-time measurement
# ----------------------------------------------------------------------
def run_matrix_fresh(seed: int, cells) -> MatrixReport:
    """The pre-snapshot baseline: build a fresh cluster per cell,
    sequentially, in this process (exactly the old ``run_matrix``)."""
    report = MatrixReport(seed=seed)
    for step, victim, kind in cells:
        report.cells.append(run_cell(step, victim, kind, seed=seed))
    return report


def measure_matrix(max_cells: Optional[int]) -> Dict[str, Any]:
    cells = matrix_cells()
    if max_cells is not None and 0 < max_cells < len(cells):
        total = len(cells)
        indices = sorted(
            {(i * total) // max_cells for i in range(max_cells)}
        )
        cells = [cells[i] for i in indices]

    started = time.perf_counter()
    fresh = run_matrix_fresh(seed=0, cells=cells)
    fresh_s = time.perf_counter() - started

    walls = {}
    fingerprints = {"fresh_sequential": fresh.fingerprint}
    for workers in (1, 4):
        started = time.perf_counter()
        report = run_matrix(seed=0, cells=cells, workers=workers)
        walls[workers] = time.perf_counter() - started
        fingerprints[f"fork_workers{workers}"] = report.fingerprint

    return {
        "cells": len(cells),
        "fresh_sequential_s": round(fresh_s, 3),
        "fork_workers1_s": round(walls[1], 3),
        "fork_workers4_s": round(walls[4], 3),
        "speedup_workers4": round(fresh_s / walls[4], 2),
        "fingerprints": fingerprints,
        "fingerprints_identical": len(set(fingerprints.values())) == 1,
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_all(smoke: bool = False) -> Dict[str, Any]:
    sizes = SIZES["smoke" if smoke else "full"]
    return {
        "cpu_count": _cores(),
        "setup": measure_setup(sizes["base_hosts"], sizes["setup_cells"]),
        "matrix": measure_matrix(sizes["matrix_cells"]),
    }


def render(results: Dict[str, Any], mode: str) -> str:
    setup, matrix = results["setup"], results["matrix"]
    lines = [
        f"P2: copy-on-write sweep runner ({mode} sizes, "
        f"{results['cpu_count']} core(s))",
        f"setup per cell ({setup['base_hosts']}-host warm base, "
        f"{setup['cells']} cells):",
        f"  fresh build in child   {setup['fresh_per_cell_s'] * 1e3:8.3f} ms",
        f"  copy-on-write fork     {setup['fork_per_cell_s'] * 1e3:8.3f} ms"
        f"   ({setup['fork_vs_fresh_ratio']:.2f}x, gate <= "
        f"{SETUP_RATIO_CEILING}x)",
        f"crash matrix ({matrix['cells']} cells):",
        f"  fresh sequential       {matrix['fresh_sequential_s']:8.3f} s",
        f"  forked, workers=1      {matrix['fork_workers1_s']:8.3f} s",
        f"  forked, workers=4      {matrix['fork_workers4_s']:8.3f} s"
        f"   ({matrix['speedup_workers4']:.2f}x vs fresh)",
        f"  fingerprints identical: {matrix['fingerprints_identical']}",
    ]
    return "\n".join(lines)


def check(results: Dict[str, Any], smoke: bool) -> list:
    failures = []
    setup, matrix = results["setup"], results["matrix"]
    if setup["fork_vs_fresh_ratio"] > SETUP_RATIO_CEILING:
        failures.append(
            f"fork setup {setup['fork_vs_fresh_ratio']:.2f}x fresh build "
            f"exceeds the {SETUP_RATIO_CEILING}x ceiling"
        )
    if not matrix["fingerprints_identical"]:
        failures.append(
            "matrix fingerprints differ across execution modes: "
            f"{matrix['fingerprints']}"
        )
    if not smoke:
        # Ideal speedup is bounded by the cores the container grants.
        target = PARALLEL_EFFICIENCY_FLOOR * min(4, results["cpu_count"])
        if matrix["speedup_workers4"] < target:
            failures.append(
                f"workers=4 speedup {matrix['speedup_workers4']:.2f}x "
                f"below the {target:.2f}x target "
                f"({results['cpu_count']} core(s) available)"
            )
    return failures


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes + setup/determinism gates only (CI mode)",
    )
    parser.add_argument(
        "--json", type=pathlib.Path, default=None,
        help="also write results to this path "
             "(default: results/P2_sweep.json)",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    results = run_all(smoke=args.smoke)
    print(render(results, mode))
    payload = {"mode": mode, "results": results}
    if args.json is not None:
        args.json.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"[wrote {args.json}]")
    else:
        print(f"[wrote {archive_json('P2_sweep', payload)}]")
    failures = check(results, smoke=args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_sweep_runner(benchmark, archive):
    """pytest-benchmark entry point (smoke sizes)."""
    results = run_simulated(benchmark, lambda: run_all(smoke=True))
    archive("P2_sweep", render(results, "smoke"))
    assert check(results, smoke=True) == []


if __name__ == "__main__":
    raise SystemExit(main())
