"""S1 — Network-speed sensitivity of the VM-policy trade-off.

The thesis's future-work discussion anticipates faster networks.  The
design question it changes: flush-to-server pays twice for dirty pages
(flush to the server, demand-page back) while full-copy moves them once
— Sprite still wins at 10 Mb/s because only *dirty* pages move during
the freeze.  As bandwidth grows, the monolithic copy's freeze shrinks
toward the state-packaging floor and the policies converge.  The sweep
quantifies where.
"""

from __future__ import annotations

from repro import MB, ClusterParams, SpriteCluster
from repro.metrics import Series, Table
from repro.obs import ClusterObservability
from repro.sim import Sleep, spawn
from repro.snapshot import forked_map_metrics

from common import run_simulated, sweep_workers

BANDWIDTHS_MBPS = (1.25, 5.0, 20.0, 80.0)   # 10 Mb/s ... ~gigabit era
VM_BYTES = 4 * MB
DIRTY = MB


def migrate_at_bandwidth(policy: str, mbytes_per_second: float):
    params = ClusterParams().clone(net_bandwidth=mbytes_per_second * MB)
    cluster = SpriteCluster(
        workstations=2, start_daemons=False, params=params, vm_policy=policy
    )
    obs = ClusterObservability.install(cluster, spans=False)
    a, b = cluster.hosts[0], cluster.hosts[1]

    def job(proc):
        yield from proc.use_memory(VM_BYTES)
        yield from proc.dirty_memory(DIRTY)
        yield from proc.compute(60.0)
        return 0

    pcb, _ = a.spawn_process(job, name="subject")
    records = []

    def driver():
        yield Sleep(1.0)
        record = yield from cluster.managers[a.address].migrate(pcb, b.address)
        records.append(record)

    spawn(cluster.sim, driver(), name="driver")
    cluster.run_until_complete(pcb.task)
    # The scalar plus the cell's metrics registry cross the pipe; the
    # parent folds the registries in cell order (forked_map_metrics).
    return records[0].freeze_time, obs.registry


def build_artifacts():
    figure = Series(
        title="S1: migration freeze vs network bandwidth "
              "(4 MB VM, 1 MB dirty)",
        x_label="bandwidth (MB/s)",
        y_label="freeze time (s)",
    )
    table = Table(
        title="S1: policy sensitivity to network speed",
        columns=["bandwidth (MB/s)", "flush freeze (s)", "full-copy freeze (s)",
                 "ratio full/flush"],
        notes="faster networks erode full-copy's penalty toward the "
              "state-packaging floor",
    )
    cells = [
        (policy, bandwidth)
        for bandwidth in BANDWIDTHS_MBPS
        for policy in ("flush-to-server", "full-copy")
    ]
    # One forked child per (policy, bandwidth) cell; deterministic
    # index-ordered merge (repro.snapshot's sweep primitive), including
    # the merged per-cell metrics registries.
    freezes, metrics = forked_map_metrics(
        lambda i: migrate_at_bandwidth(*cells[i]), len(cells),
        workers=sweep_workers(),
    )
    by_cell = dict(zip(cells, freezes))
    results = {}
    for bandwidth in BANDWIDTHS_MBPS:
        flush = by_cell[("flush-to-server", bandwidth)]
        full = by_cell[("full-copy", bandwidth)]
        results[bandwidth] = (flush, full)
        figure.add_point("flush-to-server", bandwidth, flush)
        figure.add_point("full-copy", bandwidth, full)
        table.add_row(bandwidth, flush, full, full / flush)
    total = metrics.merged_timer("mig.total").summary()
    table.notes += (
        f"; sweep aggregate: {metrics.total('mig.completed')} migrations, "
        f"{metrics.total('mig.vm_bytes') / MB:.1f} MB of VM shipped, "
        f"median total {total['p50']:.4f}s"
    )
    return figure, table, results


def test_s1_network_sweep(benchmark, archive):
    figure, table, results = run_simulated(benchmark, build_artifacts)
    archive("S1_network_sweep", figure.render() + "\n\n" + table.render())
    slow_flush, slow_full = results[BANDWIDTHS_MBPS[0]]
    fast_flush, fast_full = results[BANDWIDTHS_MBPS[-1]]
    # At Ethernet speed, full-copy freezes several times longer.
    assert slow_full > 2.5 * slow_flush
    # At high bandwidth the gap collapses (both near the state floor).
    assert fast_full < 1.5 * fast_flush
    # Everyone gets faster with bandwidth.
    assert fast_full < slow_full / 10
