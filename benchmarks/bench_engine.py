"""P1 — Discrete-event engine throughput microbenchmarks.

Every experiment funnels through ``repro.sim``'s event loop, so its
dispatch cost multiplies all simulated wall-time.  This benchmark pins
that cost down on four workloads:

* ``raw_callback``   — bare callbacks rescheduling themselves (a mix of
  zero-delay and timed hops: ready-queue and heap paths).
* ``task_resume``    — coroutine tasks resuming through ``Sleep(0)``,
  the dominant pattern in the kernel/RPC stack.
* ``channel_pingpong`` — task pairs exchanging tokens over bounded
  channels (the RPC/inbox pattern).
* ``e10_slice``      — a compressed slice of the E10 production-usage
  window: the full cluster stack (activity traces, migd, eviction,
  batches) on a live LAN.

Run standalone (``python benchmarks/bench_engine.py [--smoke]``) or via
``python -m repro experiment P1``.  Results are archived as rendered
text plus machine-readable JSON so the events/sec trajectory is tracked
from PR to PR; ``--smoke`` doubles as a CI throughput floor check.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Any, Callable, Dict, Optional, Tuple

if __package__ is None or __package__ == "":
    _SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.sim import Channel, Simulator, Sleep, spawn

try:
    from common import archive_json, run_simulated
except ImportError:  # imported as benchmarks.bench_engine
    from .common import archive_json, run_simulated  # type: ignore

#: Workload sizes: full mode for trend numbers, smoke mode for CI.
SIZES = {
    "full": {
        "raw_callback": 400_000,
        "task_resume": 200_000,
        "channel_pingpong": 50_000,
        "e10_hosts": 6,
        "e10_duration": 2 * 3600.0,
    },
    "smoke": {
        "raw_callback": 40_000,
        "task_resume": 20_000,
        "channel_pingpong": 5_000,
        "e10_hosts": 3,
        "e10_duration": 600.0,
    },
}


# ----------------------------------------------------------------------
# Event accounting that works on engines with and without a native
# ``events_fired`` counter (the counted run is separate from the timed
# run, so instrumentation never skews the wall-clock numbers).
# ----------------------------------------------------------------------
def _count_dispatches(build_and_run: Callable[[], Simulator]) -> int:
    sim = build_and_run()
    native = getattr(sim, "events_fired", None)
    if native is not None:
        return native
    counted = [0]
    original_step = Simulator.step

    def counting_step(self) -> bool:
        fired = original_step(self)
        if fired:
            counted[0] += 1
        return fired

    Simulator.step = counting_step  # type: ignore[method-assign]
    try:
        build_and_run()
    finally:
        Simulator.step = original_step  # type: ignore[method-assign]
    return counted[0]


def _measure(build_and_run: Callable[[], Simulator]) -> Tuple[float, float]:
    start = time.perf_counter()
    sim = build_and_run()
    wall = time.perf_counter() - start
    return wall, sim.now


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def _run_raw_callback(n_events: int) -> Callable[[], Simulator]:
    def build_and_run() -> Simulator:
        sim = Simulator()
        chains = 4
        remaining = [n_events]

        def tick(chain: int, hop: int) -> None:
            remaining[0] -= 1
            if remaining[0] <= 0:
                return
            if hop % 3 == 2:
                sim.schedule(1e-4, tick, chain, hop + 1)
            else:
                sim.call_soon(tick, chain, hop + 1)

        for chain in range(chains):
            sim.call_soon(tick, chain, 0)
        sim.run()
        return sim

    return build_and_run


def _run_task_resume(n_resumes: int) -> Callable[[], Simulator]:
    def build_and_run() -> Simulator:
        sim = Simulator()
        tasks = 50
        per_task = n_resumes // tasks

        def worker():
            for _ in range(per_task):
                yield Sleep(0.0)

        for i in range(tasks):
            spawn(sim, worker(), name=f"w{i}")
        sim.run()
        return sim

    return build_and_run


def _run_channel_pingpong(n_rounds: int) -> Callable[[], Simulator]:
    def build_and_run() -> Simulator:
        sim = Simulator()
        pairs = 10
        per_pair = n_rounds // pairs

        def ping(request: Channel, reply: Channel):
            for i in range(per_pair):
                yield request.put(i)
                yield reply.get()

        def pong(request: Channel, reply: Channel):
            for _ in range(per_pair):
                token = yield request.get()
                yield reply.put(token)

        for p in range(pairs):
            request = Channel(sim, name=f"req{p}")
            reply = Channel(sim, name=f"rep{p}")
            spawn(sim, ping(request, reply), name=f"ping{p}")
            spawn(sim, pong(request, reply), name=f"pong{p}")
        sim.run()
        return sim

    return build_and_run


def _run_e10_slice(hosts: int, duration: float) -> Callable[[], Simulator]:
    def build_and_run() -> Simulator:
        from repro import SpriteCluster
        from repro.loadsharing import LoadSharingService
        from repro.workloads import ActivityModel, UsageSimulation

        cluster = SpriteCluster(workstations=hosts, start_daemons=True, seed=3)
        service = LoadSharingService(cluster, architecture="centralized")
        cluster.standard_images()
        usage = UsageSimulation(
            cluster,
            service,
            duration=duration,
            activity=ActivityModel(seed=17),
            think_time=60.0,
            batch_probability=0.08,
            batch_width=4,
            batch_unit_cpu=120.0,
            seed=17,
        )
        usage.run()
        return cluster.sim

    return build_and_run


def _workloads(sizes: Dict[str, Any]) -> Dict[str, Callable[[], Simulator]]:
    return {
        "raw_callback": _run_raw_callback(sizes["raw_callback"]),
        "task_resume": _run_task_resume(sizes["task_resume"]),
        "channel_pingpong": _run_channel_pingpong(sizes["channel_pingpong"]),
        "e10_slice": _run_e10_slice(sizes["e10_hosts"], sizes["e10_duration"]),
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_all(smoke: bool = False, repeats: int = 3) -> Dict[str, Dict[str, float]]:
    """Run every workload; report best-of-``repeats`` wall time."""
    sizes = SIZES["smoke" if smoke else "full"]
    results: Dict[str, Dict[str, float]] = {}
    for name, build_and_run in _workloads(sizes).items():
        walls = []
        sim_s = 0.0
        for _ in range(repeats):
            wall, sim_s = _measure(build_and_run)
            walls.append(wall)
        events = _count_dispatches(build_and_run)
        wall = min(walls)
        results[name] = {
            "events": events,
            "wall_s": round(wall, 6),
            "sim_s": round(sim_s, 6),
            "events_per_s": round(events / wall) if wall > 0 else 0.0,
        }
    return results


def render(results: Dict[str, Dict[str, float]], mode: str) -> str:
    lines = [
        f"P1: engine throughput ({mode} sizes, best-of-N wall time)",
        f"{'workload':<20} {'events':>10} {'wall_s':>10} {'events/s':>12}",
    ]
    for name, row in results.items():
        lines.append(
            f"{name:<20} {row['events']:>10,.0f} {row['wall_s']:>10.3f} "
            f"{row['events_per_s']:>12,.0f}"
        )
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes + throughput floor check (CI mode)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repetitions (best-of)"
    )
    parser.add_argument(
        "--json", type=pathlib.Path, default=None,
        help="also write results to this path (default: results/P1_engine.json)",
    )
    parser.add_argument(
        "--min-eps", type=float, default=20_000.0,
        help="smoke mode fails if task_resume events/s drops below this",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    results = run_all(smoke=args.smoke, repeats=args.repeats)
    print(render(results, mode))
    payload = {"mode": mode, "results": results}
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[wrote {args.json}]")
    else:
        print(f"[wrote {archive_json('P1_engine', payload)}]")
    if args.smoke and results["task_resume"]["events_per_s"] < args.min_eps:
        print(
            f"FAIL: task_resume {results['task_resume']['events_per_s']:,.0f} "
            f"events/s below floor {args.min_eps:,.0f}",
            file=sys.stderr,
        )
        return 1
    return 0


def test_engine_throughput(benchmark, archive):
    """pytest-benchmark entry point (``python -m repro experiment P1``)."""
    results = run_simulated(benchmark, lambda: run_all(smoke=True, repeats=1))
    archive("P1_engine", render(results, "smoke"))
    archive_json("P1_engine", {"mode": "smoke", "results": results})
    for row in results.values():
        assert row["events"] > 0 and row["wall_s"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
