#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file (as written by ``repro trace``).

Checks that the file parses as JSON, contains a non-empty
``traceEvents`` list, and that every event carries the fields a trace
viewer needs: ``ph``, ``ts``, ``pid`` (and ``dur`` for complete
``"X"`` events, which must be non-negative).

Usage: ``python tools/validate_chrome_trace.py <trace_chrome.json>``
"""

from __future__ import annotations

import json
import pathlib
import sys


def validate(path: pathlib.Path) -> int:
    document = json.loads(path.read_text())
    if not isinstance(document, dict) or "traceEvents" not in document:
        print(f"error: {path} has no traceEvents key", file=sys.stderr)
        return 1
    events = document["traceEvents"]
    if not isinstance(events, list) or not events:
        print(f"error: {path} traceEvents is empty", file=sys.stderr)
        return 1
    complete = 0
    for index, event in enumerate(events):
        for field in ("ph", "ts", "pid"):
            if field not in event:
                print(f"error: event #{index} missing {field!r}: {event}",
                      file=sys.stderr)
                return 1
        if event["ph"] == "X":
            complete += 1
            if "dur" not in event or event["dur"] < 0:
                print(f"error: X event #{index} lacks a non-negative dur: "
                      f"{event}", file=sys.stderr)
                return 1
    if complete == 0:
        print(f"error: {path} has no complete ('X') span events",
              file=sys.stderr)
        return 1
    print(f"{path}: ok ({len(events)} events, {complete} spans)")
    return 0


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    return validate(pathlib.Path(sys.argv[1]))


if __name__ == "__main__":
    raise SystemExit(main())
