#!/usr/bin/env python
"""Longitudinal perf ledger: benchmark trajectory + regression gate.

Runs the repo's self-timing benchmarks (``benchmarks/bench_engine.py``,
``benchmarks/bench_faults.py``) as subprocesses with ``--json``, stamps
the results with commit/cpu metadata, and appends one entry to
``BENCH_history.json`` at the repo root — turning isolated bench runs
into a tracked curve that ``repro report`` and CI can read.

The regression gate compares every throughput metric (``events_per_s``
leaves) in the new entry against the best previous recording *in the
same mode* (smoke results are never compared against full runs): the
gate fails when ``current < best / slowdown``.  The default slowdown of
2.0 is deliberately loose — shared CI machines jitter — it exists to
catch accidental algorithmic regressions (an O(n) scan sneaking into
the dispatch loop), not 10% noise.

Usage::

    python -m repro perf --smoke          # CI: bench, append, gate
    python tools/perf_ledger.py --smoke   # same, direct

Wall-clock and host metadata are fine here: this file lives in
``tools/`` (outside the ``src/repro`` determinism lint root) and the
ledger is offline metadata, never visible to a simulation.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile
from typing import Any, Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.json"
DEFAULT_SLOWDOWN = 2.0

#: Benchmarks the ledger tracks: name -> (script, extra args).  Each
#: supports ``--smoke --json PATH`` and emits ``{"mode", "results"}``.
#: The extra args disarm each benchmark's *internal* pass/fail ceilings:
#: the ledger records and gates longitudinally itself; CI runs the
#: strict single-shot gates in their own steps.
BENCHMARKS = {
    "bench_engine": ("benchmarks/bench_engine.py", ["--min-eps", "0"]),
    "bench_faults": (
        "benchmarks/bench_faults.py",
        ["--max-overhead", "10", "--max-journal-overhead", "10"],
    ),
    "bench_checkpoint": (
        "benchmarks/bench_checkpoint.py",
        ["--max-idle-overhead", "10"],
    ),
}


def git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(REPO_ROOT), capture_output=True, text=True, timeout=30,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def run_benchmark(script: str, smoke: bool,
                  extra: Optional[List[str]] = None) -> Dict[str, Any]:
    """Run one benchmark subprocess and return its JSON payload."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        out_path = pathlib.Path(handle.name)
    try:
        command = [sys.executable, str(REPO_ROOT / script),
                   "--json", str(out_path)] + list(extra or ())
        if smoke:
            command.append("--smoke")
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = (
            src + (":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        )
        proc = subprocess.run(
            command, cwd=str(REPO_ROOT), env=env,
            capture_output=True, text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{script} exited {proc.returncode}:\n{proc.stdout}"
                f"\n{proc.stderr}"
            )
        return json.loads(out_path.read_text())
    finally:
        out_path.unlink(missing_ok=True)


def build_entry(smoke: bool, benchmarks: Optional[Dict[str, Any]] = None
                ) -> Dict[str, Any]:
    """One ledger entry; runs the benchmarks unless payloads are given."""
    if benchmarks is None:
        benchmarks = {
            name: run_benchmark(script, smoke, extra)
            for name, (script, extra) in sorted(BENCHMARKS.items())
        }
    return {
        "stamp": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "commit": git_commit(),
        "mode": "smoke" if smoke else "full",
        "host": {
            "machine": platform.machine(),
            "processor": platform.processor() or platform.machine(),
            "python": platform.python_version(),
        },
        "benchmarks": benchmarks,
    }


# ----------------------------------------------------------------------
# History file
# ----------------------------------------------------------------------
def load_history(path: pathlib.Path) -> List[Dict[str, Any]]:
    if not path.is_file():
        return []
    data = json.loads(path.read_text())
    if not isinstance(data, list):
        raise ValueError(f"{path} is not a JSON list of ledger entries")
    return data


def append_entry(path: pathlib.Path, entry: Dict[str, Any]
                 ) -> List[Dict[str, Any]]:
    history = load_history(path)
    history.append(entry)
    path.write_text(json.dumps(history, indent=1, sort_keys=True) + "\n")
    return history


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
def throughput_metrics(entry: Dict[str, Any]) -> Dict[str, float]:
    """Flatten every higher-is-better ``events_per_s`` leaf to a dotted
    path, e.g. ``bench_engine.task_resume.events_per_s``."""
    metrics: Dict[str, float] = {}

    def walk(prefix: str, node: Any) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                path = f"{prefix}.{key}" if prefix else key
                if key == "events_per_s" and isinstance(value, (int, float)):
                    metrics[path] = float(value)
                else:
                    walk(path, value)

    walk("", entry.get("benchmarks", {}))
    return metrics


def check_regression(
    history: List[Dict[str, Any]],
    entry: Dict[str, Any],
    slowdown: float = DEFAULT_SLOWDOWN,
) -> List[str]:
    """Failure messages for every metric that regressed past the gate.

    ``history`` is the list of *previous* entries (the new entry must
    not be in it); only same-mode entries are compared.
    """
    if slowdown <= 1.0:
        raise ValueError("slowdown must be > 1.0")
    mode = entry.get("mode")
    best: Dict[str, float] = {}
    for previous in history:
        if previous.get("mode") != mode:
            continue
        for path, value in throughput_metrics(previous).items():
            if value > best.get(path, 0.0):
                best[path] = value
    failures = []
    for path, value in sorted(throughput_metrics(entry).items()):
        reference = best.get(path)
        if reference is None:
            continue
        floor = reference / slowdown
        if value < floor:
            failures.append(
                f"{path}: {value:.0f} ev/s is below the regression floor "
                f"{floor:.0f} (best {mode} recording {reference:.0f} "
                f"/ slowdown {slowdown})"
            )
    return failures


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads; recorded under mode=smoke")
    parser.add_argument("--history", default=None,
                        help=f"ledger path (default {DEFAULT_HISTORY})")
    parser.add_argument("--slowdown", type=float, default=DEFAULT_SLOWDOWN,
                        help="gate: fail when a metric drops below "
                             "best-known/slowdown (default %(default)s)")
    parser.add_argument("--no-gate", action="store_true",
                        help="append the entry but skip the gate")
    args = parser.parse_args(argv)

    history_path = pathlib.Path(args.history) if args.history else DEFAULT_HISTORY
    previous = load_history(history_path)
    entry = build_entry(smoke=args.smoke)
    metrics = throughput_metrics(entry)
    print(f"perf ledger: {len(metrics)} throughput metric(s) at "
          f"commit {entry['commit'][:12]} (mode={entry['mode']})")
    for path, value in sorted(metrics.items()):
        print(f"  {path:<44} {value:>12,.0f} ev/s")

    failures: List[str] = []
    if not args.no_gate:
        failures = check_regression(previous, entry, slowdown=args.slowdown)
    append_entry(history_path, entry)
    print(f"appended entry {len(previous) + 1} to {history_path}")
    if failures:
        print("\nREGRESSION GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
