#!/usr/bin/env python
"""Static check: every trace/span emission site must be guarded.

Thin shim over the AST rule ``obs-unguarded-emit`` in
``repro.analysis`` (see ``docs/static-analysis.md``).  This used to be
a standalone regex scan that accepted any line containing ``enabled``
or ``is not None`` within 5 lines above an emission — which passed
sites whose "guard" was unrelated (a false negative the AST rule
closes: the guard must actually *dominate* the call in its enclosing
function).

CLI and exit codes are unchanged so the existing CI step keeps working:
0 when clean, 1 with a listing of unguarded sites.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import run_lint  # noqa: E402


def main() -> int:
    result = run_lint(rule_ids=["obs-unguarded-emit"])
    violations = result.findings
    if violations:
        print("unguarded trace/span emission sites:")
        for finding in violations:
            rel = finding.path.relative_to(REPO_ROOT)
            print(f"  {rel}:{finding.line}: {finding.snippet}")
        print(
            f"\n{len(violations)} site(s) are not dominated by an "
            "'enabled' / 'is not None' guard (see docs/observability.md "
            "and docs/static-analysis.md)."
        )
        return 1
    print("trace guards ok: every emission site is guarded")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
