#!/usr/bin/env python
"""Static check: every trace/span emission site must be guarded.

The engine's zero-cost-when-disabled property (PR 1) only holds if no
call site pays for tracing when it is off.  This script greps
``src/repro`` for ``tracer.emit(``, ``spans.start(``, and
``spans.record(`` calls and requires a guard — a line containing
``enabled`` or an ``is not None`` test — within the few lines above the
call (or on the call's own line).

Helpers whose *callers* hold the guard (e.g. a private method only
invoked under ``if root is not None``) mark the site with a
``# span-guard: caller`` comment.

Exempt entirely:

* ``src/repro/obs/`` — the observability implementation itself (its
  emission into the flat tracer is guarded internally, and its whole
  reason for existing is to make these calls);
* ``src/repro/sim/trace.py`` — the tracer implementation.

Exit status 0 when clean, 1 with a listing of unguarded sites.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"

EMIT = re.compile(r"\b(?:tracer\.emit|spans\.start|spans\.record)\(")
GUARD = re.compile(r"\benabled\b|\bis not None\b|span-guard:\s*caller")
#: How many lines above a call site the guard may sit.
WINDOW = 5

EXEMPT_DIRS = ("obs",)
EXEMPT_FILES = ("sim/trace.py",)


def is_exempt(path: pathlib.Path) -> bool:
    rel = path.relative_to(SRC).as_posix()
    if rel in EXEMPT_FILES:
        return True
    return rel.split("/", 1)[0] in EXEMPT_DIRS


def check_file(path: pathlib.Path) -> list:
    violations = []
    lines = path.read_text().splitlines()
    for index, line in enumerate(lines):
        if not EMIT.search(line):
            continue
        stripped = line.lstrip()
        if stripped.startswith("#"):
            continue
        window = lines[max(0, index - WINDOW):index + 1]
        if not any(GUARD.search(candidate) for candidate in window):
            violations.append((path, index + 1, stripped))
    return violations


def main() -> int:
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        if is_exempt(path):
            continue
        violations.extend(check_file(path))
    if violations:
        print("unguarded trace/span emission sites:")
        for path, lineno, text in violations:
            rel = path.relative_to(REPO_ROOT)
            print(f"  {rel}:{lineno}: {text}")
        print(
            f"\n{len(violations)} site(s) lack an 'enabled' / 'is not None' "
            f"guard within {WINDOW} lines (see docs/observability.md)."
        )
        return 1
    print("trace guards ok: every emission site is guarded")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
